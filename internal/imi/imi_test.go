package imi

import (
	"math/rand"
	"testing"

	"vaq/internal/eval"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

func clustered(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = float32(rng.Intn(5))*2 + float32(rng.NormFloat64()*0.3)
		}
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clustered(rng, 100, 8)
	if _, err := Build(x, x, Config{CoarseBits: 0}); err == nil {
		t.Fatal("CoarseBits=0 must fail")
	}
	if _, err := Build(x, x, Config{CoarseBits: 13}); err == nil {
		t.Fatal("CoarseBits=13 must fail")
	}
}

func TestSearchFindsNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clustered(rng, 2000, 16)
	ix, err := Build(x, x, Config{
		CoarseBits: 4,
		OPQ:        quantizer.OPQConfig{M: 4, BitsPerSubspace: 8, Train: quantizer.TrainConfig{Seed: 2}},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2000 {
		t.Fatalf("len %d", ix.Len())
	}
	queries := clustered(rng, 15, 16)
	gt, _ := eval.GroundTruth(x, queries, 10)
	results := make([][]int, queries.Rows)
	for qi := 0; qi < queries.Rows; qi++ {
		res, err := ix.Search(queries.Row(qi), 10, 400)
		if err != nil {
			t.Fatal(err)
		}
		results[qi] = eval.IDs(res)
	}
	recall := eval.Recall(results, gt, 10)
	if recall < 0.4 {
		t.Fatalf("IMI recall@10 = %v too low", recall)
	}
}

func TestMoreCandidatesMoreRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clustered(rng, 1500, 12)
	ix, err := Build(x, x, Config{
		CoarseBits: 4,
		OPQ:        quantizer.OPQConfig{M: 4, BitsPerSubspace: 6, Train: quantizer.TrainConfig{Seed: 3}},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := clustered(rng, 10, 12)
	gt, _ := eval.GroundTruth(x, queries, 10)
	recallAt := func(cand int) float64 {
		results := make([][]int, queries.Rows)
		for qi := 0; qi < queries.Rows; qi++ {
			res, _ := ix.Search(queries.Row(qi), 10, cand)
			results[qi] = eval.IDs(res)
		}
		return eval.Recall(results, gt, 10)
	}
	small, large := recallAt(20), recallAt(1500)
	if large < small-1e-9 {
		t.Fatalf("more candidates must not reduce recall: %v vs %v", small, large)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clustered(rng, 300, 8)
	ix, err := Build(x, x, Config{
		CoarseBits: 3,
		OPQ:        quantizer.OPQConfig{M: 2, BitsPerSubspace: 4, Train: quantizer.TrainConfig{Seed: 4}},
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 3), 5, 10); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0, 10); err == nil {
		t.Fatal("k=0 must fail")
	}
	// candidates below k is clamped.
	res, err := ix.Search(x.Row(0), 5, 1)
	if err != nil || len(res) == 0 {
		t.Fatalf("clamped candidates: %v %v", res, err)
	}
}
