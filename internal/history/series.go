// Package history is the in-process time-series store behind trend-driven
// operations: a background collector goroutine (Collector) samples one or
// more IndexMetrics registries on a configurable cadence into per-series
// lock-free ring buffers with tiered retention — the raw cadence tier plus
// 10s and 1m downsampled aggregates (min/max/sum/count/first/last), so
// rates and windowed summaries stay queryable long after the raw points
// have been overwritten. On top of the store sit a small query API (Range,
// RateOverWindow, DeltaOverWindow), derived series (QPS, prune rate, drift
// slope, recall trend), canonical multi-window multi-burn-rate SLO alert
// evaluation feeding the shared alert.Bus (vaq.burn.*), a frozen JSON dump
// (the incident bundle's history.json member), and the /debug/vaq/history
// endpoint serving JSON ranges and an ASCII-sparkline text view.
//
// Concurrency model: each Series has exactly one writer — the collector
// goroutine — and any number of readers (HTTP handlers, the bundle writer,
// burn evaluation). The raw tier is a pair of parallel atomic slot arrays
// plus a points-ever write cursor; the writer fills the slot before bumping
// the cursor, and a reader validates the cursor after copying, discarding
// any slot the writer could have been overwriting mid-copy. The
// downsampled tiers are rings of atomic.Pointer[Bucket] with the same
// cursor validation (pointer loads cannot tear, but a slot can be lapped).
// No locks are held on either side, and sampling allocates nothing on the
// steady path beyond the closed buckets it publishes.
package history

import (
	"math"
	"sync/atomic"
	"time"
)

// Kind classifies a series for downsampling and query semantics: a counter
// is cumulative and monotone except across resets (deltas and rates are
// meaningful; a downsampled bucket represents it by its Last value), a
// gauge is a level (a bucket represents it by its mean).
type Kind int

const (
	Counter Kind = iota
	Gauge
)

func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Point is one raw sample: a unix-millisecond timestamp and a value.
type Point struct {
	TS  int64   `json:"ts_ms"`
	Val float64 `json:"v"`
}

// Bucket is one downsampled aggregate over a fixed time bucket
// [Start, End): enough moments to reconstruct rates (First/Last for
// counters), levels (Sum/Count means for gauges) and envelopes (Min/Max)
// after the raw points are gone.
type Bucket struct {
	Start int64   `json:"start_ms"`
	End   int64   `json:"end_ms"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
	First float64 `json:"first"`
	Last  float64 `json:"last"`
}

// fold merges one sample into the bucket.
func (b *Bucket) fold(v float64) {
	if b.Count == 0 {
		b.Min, b.Max, b.First = v, v, v
	} else {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.Sum += v
	b.Count++
	b.Last = v
}

// point is the bucket's single-point representation in a merged Range:
// counters keep their Last value (preserving monotonicity for delta math),
// gauges their mean, both stamped at the end of the bucket.
func (b *Bucket) point(kind Kind) Point {
	v := b.Last
	if kind == Gauge && b.Count > 0 {
		v = b.Sum / float64(b.Count)
	}
	return Point{TS: b.End, Val: v}
}

// tierRing is a single-writer ring of closed buckets.
type tierRing struct {
	slots []atomic.Pointer[Bucket]
	w     atomic.Uint64 // buckets ever pushed
}

func (t *tierRing) push(b *Bucket) {
	idx := t.w.Load()
	t.slots[idx%uint64(len(t.slots))].Store(b)
	t.w.Store(idx + 1)
}

// snapshot copies the retained buckets, oldest first, discarding any slot
// the writer could have lapped during the copy.
func (t *tierRing) snapshot() []Bucket {
	n := uint64(len(t.slots))
	if n == 0 {
		return nil
	}
	w1 := t.w.Load()
	lo := uint64(0)
	if w1 > n {
		lo = w1 - n
	}
	type indexed struct {
		idx uint64
		b   Bucket
	}
	tmp := make([]indexed, 0, w1-lo)
	for i := lo; i < w1; i++ {
		if p := t.slots[i%n].Load(); p != nil {
			tmp = append(tmp, indexed{i, *p})
		}
	}
	w2 := t.w.Load()
	// A slot holding index i is only rewritten by the push of index i+n,
	// which stores the pointer before bumping the cursor past i+n: once the
	// reader observes w2, any index <= w2-n may already hold newer data.
	out := make([]Bucket, 0, len(tmp))
	for _, e := range tmp {
		if w2 >= n && e.idx <= w2-n {
			continue
		}
		out = append(out, e.b)
	}
	return out
}

// Series is one named metric's retained history across the three tiers.
// Append is single-writer (the collector goroutine); every other method is
// safe to call concurrently with it.
type Series struct {
	name string
	kind Kind

	// Raw tier: parallel slot arrays + points-ever cursor. The writer
	// stores both slots before bumping the cursor; readers validate the
	// cursor after copying (see rawPoints).
	rawTS  []atomic.Int64
	rawVal []atomic.Uint64 // math.Float64bits
	rawW   atomic.Uint64

	mid  tierRing // midBucket-wide aggregates
	long tierRing // longBucket-wide aggregates

	midBucket  int64 // bucket widths in milliseconds
	longBucket int64

	// Open (in-progress) buckets, owned exclusively by the writer; they
	// become visible to readers only when closed into the rings.
	openMid  Bucket
	openLong Bucket
}

// newSeries shapes a series: rawCap raw samples, midCap buckets of
// midBucket width, longCap buckets of longBucket width.
func newSeries(name string, kind Kind, rawCap, midCap, longCap int, midBucket, longBucket time.Duration) *Series {
	return &Series{
		name:       name,
		kind:       kind,
		rawTS:      make([]atomic.Int64, rawCap),
		rawVal:     make([]atomic.Uint64, rawCap),
		mid:        tierRing{slots: make([]atomic.Pointer[Bucket], midCap)},
		long:       tierRing{slots: make([]atomic.Pointer[Bucket], longCap)},
		midBucket:  midBucket.Milliseconds(),
		longBucket: longBucket.Milliseconds(),
	}
}

// Name reports the series name; Kind its class.
func (s *Series) Name() string { return s.name }

// Kind reports whether the series is a counter or a gauge.
func (s *Series) Kind() Kind { return s.kind }

// append records one sample and runs the tier compaction: when the sample
// crosses a bucket boundary, the open bucket is closed into its ring and a
// fresh one starts. Writer-only.
func (s *Series) append(tsMs int64, v float64) {
	idx := s.rawW.Load()
	slot := idx % uint64(len(s.rawTS))
	s.rawTS[slot].Store(tsMs)
	s.rawVal[slot].Store(math.Float64bits(v))
	s.rawW.Store(idx + 1)

	s.foldTier(&s.openMid, &s.mid, s.midBucket, tsMs, v)
	s.foldTier(&s.openLong, &s.long, s.longBucket, tsMs, v)
}

// foldTier folds one sample into an open bucket, closing it on boundary
// cross. Writer-only.
func (s *Series) foldTier(open *Bucket, ring *tierRing, width, tsMs int64, v float64) {
	start := tsMs - mod(tsMs, width)
	if open.Count > 0 && open.Start != start {
		closed := *open
		ring.push(&closed)
		*open = Bucket{}
	}
	if open.Count == 0 {
		open.Start = start
		open.End = start + width
	}
	open.fold(v)
}

// mod is a floored modulo so pre-epoch timestamps still bucket correctly.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// rawPoints copies the retained raw samples, oldest first. The cursor is
// re-read after the copy and any slot the writer could have been rewriting
// mid-copy (its index lapped by the second cursor read) is discarded, so a
// torn ts/val pair can never escape.
func (s *Series) rawPoints() []Point {
	n := uint64(len(s.rawTS))
	if n == 0 {
		return nil
	}
	w1 := s.rawW.Load()
	lo := uint64(0)
	if w1 > n {
		lo = w1 - n
	}
	type indexed struct {
		idx uint64
		p   Point
	}
	tmp := make([]indexed, 0, w1-lo)
	for i := lo; i < w1; i++ {
		slot := i % n
		tmp = append(tmp, indexed{i, Point{
			TS:  s.rawTS[slot].Load(),
			Val: math.Float64frombits(s.rawVal[slot].Load()),
		}})
	}
	w2 := s.rawW.Load()
	out := make([]Point, 0, len(tmp))
	for _, e := range tmp {
		// The write of index i+n rewrites slot i%n and may be in progress
		// once the cursor reads i+n (the bump lands after the slot stores):
		// discard i <= w2-n.
		if w2 >= n && e.idx <= w2-n {
			continue
		}
		out = append(out, e.p)
	}
	return out
}

// Range returns the series' points within [from, to], oldest first,
// merging the three tiers: raw points where retained, mid buckets for the
// span raw no longer covers, long buckets beyond that. Downsampled buckets
// contribute one point each (Last for counters, mean for gauges, stamped
// at bucket end). Zero from/to bounds are open.
func (s *Series) Range(fromMs, toMs int64) []Point {
	raw := s.rawPoints()
	oldestRaw := int64(math.MaxInt64)
	if len(raw) > 0 {
		oldestRaw = raw[0].TS
	}
	mid := s.mid.snapshot()
	oldestMid := int64(math.MaxInt64)
	if len(mid) > 0 {
		oldestMid = mid[0].Start
	}
	out := make([]Point, 0, len(raw)+len(mid))
	for _, b := range s.long.snapshot() {
		if b.End > oldestMid || b.End > oldestRaw {
			continue
		}
		out = append(out, b.point(s.kind))
	}
	for _, b := range mid {
		if b.End > oldestRaw {
			continue
		}
		out = append(out, b.point(s.kind))
	}
	out = append(out, raw...)
	// Bound filter (tiers are each time-ordered and spliced in order, so
	// the merged slice is already sorted).
	filtered := out[:0]
	for _, p := range out {
		if fromMs != 0 && p.TS < fromMs {
			continue
		}
		if toMs != 0 && p.TS > toMs {
			continue
		}
		filtered = append(filtered, p)
	}
	return filtered
}

// DeltaOverWindow returns a counter's increase over the trailing window
// ending at now, summing consecutive positive deltas; a negative step is a
// counter reset (metrics.Reset), and the post-reset value counts from
// zero. The second return is the time actually covered by retained points
// inside the window — callers gate burn-rate eligibility on it.
func (s *Series) DeltaOverWindow(now time.Time, window time.Duration) (delta float64, covered time.Duration) {
	nowMs := now.UnixMilli()
	pts := s.Range(nowMs-window.Milliseconds(), nowMs)
	if len(pts) == 0 {
		return 0, 0
	}
	for i := 1; i < len(pts); i++ {
		d := pts[i].Val - pts[i-1].Val
		if d >= 0 {
			delta += d
		} else {
			delta += pts[i].Val // reset: the new epoch starts at zero
		}
	}
	return delta, time.Duration(pts[len(pts)-1].TS-pts[0].TS) * time.Millisecond
}

// RateOverWindow returns a counter's per-second rate over the trailing
// window (delta over covered time; 0 when fewer than two points are
// retained).
func (s *Series) RateOverWindow(now time.Time, window time.Duration) float64 {
	delta, covered := s.DeltaOverWindow(now, window)
	if covered <= 0 {
		return 0
	}
	return delta / covered.Seconds()
}

// Last returns the newest retained point (ok=false when empty).
func (s *Series) Last() (Point, bool) {
	pts := s.rawPoints()
	if len(pts) == 0 {
		// Raw tier empty only before the first append; buckets would be
		// empty too.
		return Point{}, false
	}
	return pts[len(pts)-1], true
}
