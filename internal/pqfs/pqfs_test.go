package pqfs

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

func clustered(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		for j := 0; j < d; j++ {
			r[j] = float32(rng.Intn(4))*2 + float32(rng.NormFloat64()*0.2)
		}
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clustered(rng, 50, 8)
	if _, err := Build(x, x, Config{M: 0}); err == nil {
		t.Fatal("M=0 must fail")
	}
	if _, err := Build(x, vec.NewMatrix(5, 4), Config{M: 2}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
}

// The defining property of PQ Fast Scan: identical results to plain PQ on
// the same codebooks, because the integer pass only filters codes whose
// lower bound proves they cannot make the top-k.
func TestMatchesPlainPQExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clustered(rng, 1200, 16)
	cfg := Config{M: 4, Train: quantizer.TrainConfig{Seed: 7}}
	ix, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := quantizer.TrainPQ(x, x, quantizer.PQConfig{
		M: 4, BitsPerSubspace: 8, Train: quantizer.TrainConfig{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(x.Rows))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.1)
		}
		fast, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := pq.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(plain) {
			t.Fatalf("lengths %d vs %d", len(fast), len(plain))
		}
		for i := range fast {
			if math.Abs(float64(fast[i].Dist-plain[i].Dist)) > 1e-5*(1+float64(plain[i].Dist)) {
				t.Fatalf("trial %d rank %d: PQFS %v vs PQ %v", trial, i, fast[i], plain[i])
			}
		}
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clustered(rng, 300, 8)
	ix, err := Build(x, x, Config{M: 2, Train: quantizer.TrainConfig{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 300 || ix.Dim() != 8 {
		t.Fatalf("shape %d %d", ix.Len(), ix.Dim())
	}
	if _, err := ix.Search(make([]float32, 5), 5); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0); err == nil {
		t.Fatal("k=0 must fail")
	}
}
