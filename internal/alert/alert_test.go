package alert

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSourceEdgeLatch(t *testing.T) {
	s := NewSource("vaq.test")
	if s.Firing() {
		t.Fatal("new source firing")
	}
	if !s.Set(true) {
		t.Fatal("first Set(true) must report the breach edge")
	}
	if !s.Firing() {
		t.Fatal("source not firing after breach")
	}
	for i := 0; i < 5; i++ {
		if s.Set(true) {
			t.Fatal("latched source re-fired")
		}
	}
	if s.Set(false) {
		t.Fatal("recovery reported as a breach edge")
	}
	if s.Firing() {
		t.Fatal("source still firing after recovery")
	}
	if !s.Set(true) {
		t.Fatal("re-armed source must fire again")
	}
	if got := s.Fires(); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
}

func TestSourceResetRearmsWithoutRecoveryEvent(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	s.Set(true)
	s.Reset()
	if s.Firing() {
		t.Fatal("Reset did not re-arm")
	}
	if got := len(b.History()); got != 1 {
		t.Fatalf("history after Reset has %d events, want 1 (no recovery edge)", got)
	}
	if !s.Set(true) {
		t.Fatal("source must fire again after Reset")
	}
}

func TestNilSafety(t *testing.T) {
	var s *Source
	if s.Set(true) || s.Firing() || s.Fires() != 0 || s.Name() != "" {
		t.Fatal("nil source must no-op")
	}
	s.Reset()
	if st := s.Status(); st.Name != "" {
		t.Fatal("nil source status not zero")
	}
	var b *Bus
	if b.Source("x") != nil || b.Lookup("x") != nil || b.Sources() != nil || b.Snapshot() != nil {
		t.Fatal("nil bus must return nils")
	}
	b.ResetAll()
	if b.History() != nil || b.DroppedEvents() != 0 {
		t.Fatal("nil bus history/drops not empty")
	}
	ch, cancel := b.Subscribe(4)
	if ch != nil {
		t.Fatal("nil bus Subscribe returned a channel")
	}
	cancel()
	b.OnEdge(func(Event) {})()
}

func TestBusRegisterOrGet(t *testing.T) {
	b := NewBus()
	a1 := b.Source("vaq.a")
	a2 := b.Source("vaq.a")
	if a1 != a2 {
		t.Fatal("Source must register-or-get, not duplicate")
	}
	b.Source("vaq.b")
	srcs := b.Sources()
	if len(srcs) != 2 || srcs[0].Name() != "vaq.a" || srcs[1].Name() != "vaq.b" {
		t.Fatalf("Sources order wrong: %v", srcs)
	}
	if b.Lookup("vaq.b") == nil || b.Lookup("vaq.missing") != nil {
		t.Fatal("Lookup wrong")
	}
}

func TestBusHistoryAndSeq(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	for i := 0; i < 3; i++ {
		s.Set(true)
		s.Set(false)
	}
	h := b.History()
	if len(h) != 6 {
		t.Fatalf("history has %d events, want 6", len(h))
	}
	for i, ev := range h {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if wantFiring := i%2 == 0; ev.Firing != wantFiring {
			t.Fatalf("event %d firing=%v, want %v", i, ev.Firing, wantFiring)
		}
		if ev.Source != "vaq.test" {
			t.Fatalf("event %d source %q", i, ev.Source)
		}
	}
}

func TestBusHistoryRingWraps(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	total := historySize*2 + 10
	for i := 0; i < total/2; i++ {
		s.Set(true)
		s.Set(false)
	}
	h := b.History()
	if len(h) != historySize {
		t.Fatalf("wrapped history has %d events, want %d", len(h), historySize)
	}
	want := uint64(total - historySize + 1)
	for i, ev := range h {
		if ev.Seq != want+uint64(i) {
			t.Fatalf("wrapped event %d has seq %d, want %d", i, ev.Seq, want+uint64(i))
		}
	}
}

func TestSubscribeAndCancel(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	ch, cancel := b.Subscribe(4)
	s.Set(true)
	ev := <-ch
	if !ev.Firing || ev.Source != "vaq.test" {
		t.Fatalf("subscriber got %+v", ev)
	}
	s.Set(false)
	if ev := <-ch; ev.Firing {
		t.Fatalf("expected recovery event, got %+v", ev)
	}
	cancel()
	s.Set(true)
	select {
	case ev := <-ch:
		t.Fatalf("cancelled subscriber got %+v", ev)
	default:
	}
}

func TestSubscribeNonBlockingDrops(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	_, cancel := b.Subscribe(1)
	defer cancel()
	// Fill the buffer, then force drops: the publisher must never block.
	s.Set(true)
	s.Set(false)
	s.Set(true)
	if b.DroppedEvents() == 0 {
		t.Fatal("expected dropped events on a full subscriber")
	}
}

func TestOnEdgeCallback(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	var mu sync.Mutex
	var got []Event
	cancel := b.OnEdge(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	s.Set(true)
	s.Set(false)
	cancel()
	s.Set(true)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || !got[0].Firing || got[1].Firing {
		t.Fatalf("callback got %+v", got)
	}
}

func TestConcurrentSetFiresExactlyOnce(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	var edges atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if s.Set(true) {
					edges.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := edges.Load(); got != 1 {
		t.Fatalf("concurrent Set produced %d breach edges, want 1", got)
	}
	if s.Fires() != 1 {
		t.Fatalf("Fires = %d, want 1", s.Fires())
	}
}

func TestStatusCounts(t *testing.T) {
	b := NewBus()
	s := b.Source("vaq.test")
	s.Set(true)
	s.Set(false)
	s.Set(true)
	st := s.Status()
	if st.Name != "vaq.test" || !st.Firing || st.Fires != 2 || st.Recoveries != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.LastEvent.IsZero() {
		t.Fatal("status missing last event time")
	}
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].Fires != 2 {
		t.Fatalf("bus snapshot %+v", snap)
	}
}
