package vec

import "math"

// SquaredL2 returns the squared Euclidean distance between a and b.
// The slices must have equal length; this is the hot kernel so it is not
// checked here (callers validate dimensions once, at build time).
func SquaredL2(a, b []float32) float32 {
	var d0, d1, d2, d3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		t0 := a[i] - b[i]
		t1 := a[i+1] - b[i+1]
		t2 := a[i+2] - b[i+2]
		t3 := a[i+3] - b[i+3]
		d0 += t0 * t0
		d1 += t1 * t1
		d2 += t2 * t2
		d3 += t3 * t3
	}
	d := d0 + d1 + d2 + d3
	for ; i < n; i++ {
		t := a[i] - b[i]
		d += t * t
	}
	return d
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2(a, b))))
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	var d0, d1, d2, d3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 += a[i] * b[i]
		d1 += a[i+1] * b[i+1]
		d2 += a[i+2] * b[i+2]
		d3 += a[i+3] * b[i+3]
	}
	d := d0 + d1 + d2 + d3
	for ; i < n; i++ {
		d += a[i] * b[i]
	}
	return d
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Normalize scales a in place to unit Euclidean norm. Zero vectors are left
// unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// ZNormalize shifts and scales a in place to zero mean and unit standard
// deviation. Constant vectors become all-zero.
func ZNormalize(a []float32) {
	if len(a) == 0 {
		return
	}
	var sum float64
	for _, v := range a {
		sum += float64(v)
	}
	mean := sum / float64(len(a))
	var ss float64
	for _, v := range a {
		t := float64(v) - mean
		ss += t * t
	}
	std := math.Sqrt(ss / float64(len(a)))
	if std == 0 {
		for i := range a {
			a[i] = 0
		}
		return
	}
	inv := 1 / std
	for i := range a {
		a[i] = float32((float64(a[i]) - mean) * inv)
	}
}

// ZNormalizeRows z-normalizes every row of m in place.
func ZNormalizeRows(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		ZNormalize(m.Row(i))
	}
}

// ColumnMeans returns the per-column means of m as float64.
func ColumnMeans(m *Matrix) []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			means[j] += float64(v)
		}
	}
	if m.Rows > 0 {
		inv := 1 / float64(m.Rows)
		for j := range means {
			means[j] *= inv
		}
	}
	return means
}

// ColumnVariances returns the per-column (population) variances of m.
func ColumnVariances(m *Matrix) []float64 {
	means := ColumnMeans(m)
	vars := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			t := float64(v) - means[j]
			vars[j] += t * t
		}
	}
	if m.Rows > 0 {
		inv := 1 / float64(m.Rows)
		for j := range vars {
			vars[j] *= inv
		}
	}
	return vars
}
