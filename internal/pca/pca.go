// Package pca implements principal component analysis on top of the
// linalg eigensolver. It corresponds to Algorithm 1 ("Measuring Variance of
// Dimensions", VarPCA) of the VAQ paper: eigendecompose the second-moment
// matrix XᵀX, sort eigenpairs by descending eigenvalue, and expose the
// normalized eigenvalue energy as the per-dimension importance measure
// (paper Equation 6).
package pca

import (
	"errors"
	"fmt"
	"math"

	"vaq/internal/linalg"
	"vaq/internal/vec"
)

// Model is a fitted PCA: an orthonormal basis sorted by descending
// explained variance, plus the variance profile itself.
type Model struct {
	// Dim is the input dimensionality d.
	Dim int
	// Eigenvalues are sorted descending; negative values (possible only
	// through rounding) are clamped to zero.
	Eigenvalues []float64
	// Components is the d x d matrix whose COLUMNS are the eigenvectors,
	// ordered to match Eigenvalues. Projecting data is X * Components.
	Components *linalg.Dense
	// Centered records whether the model subtracted column means.
	Mean []float64 // nil when not centered
}

// Options configures Fit.
type Options struct {
	// Center subtracts per-column means before computing the covariance.
	// The paper operates on z-normalized series and uses the raw
	// second-moment matrix XᵀX (Algorithm 1), so the default is false.
	Center bool
	// Method selects the eigensolver (default EigAuto).
	Method linalg.EigMethod
}

// Fit computes a PCA model of x.
func Fit(x *vec.Matrix, opt Options) (*Model, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, errors.New("pca: empty input")
	}
	cov := linalg.Covariance(x, opt.Center)
	eig, err := linalg.SymEig(cov, opt.Method)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	vals := make([]float64, len(eig.Values))
	for i, v := range eig.Values {
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	m := &Model{Dim: x.Cols, Eigenvalues: vals, Components: eig.Vectors}
	if opt.Center {
		m.Mean = vec.ColumnMeans(x)
	}
	return m, nil
}

// ExplainedVarianceRatio returns the normalized eigenvalue energy
// |λi| / Σj |λj| (paper Equation 6). The result sums to 1 unless all
// eigenvalues are zero, in which case a uniform profile is returned so that
// downstream bit allocation remains well defined.
func (m *Model) ExplainedVarianceRatio() []float64 {
	out := make([]float64, len(m.Eigenvalues))
	var total float64
	for _, v := range m.Eigenvalues {
		total += math.Abs(v)
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, v := range m.Eigenvalues {
		out[i] = math.Abs(v) / total
	}
	return out
}

// Project maps x (n x d) onto the PCA basis, producing the principal
// component scores Z = X * V (n x d). If the model was centered, the mean
// is subtracted first.
func (m *Model) Project(x *vec.Matrix) (*vec.Matrix, error) {
	if x.Cols != m.Dim {
		return nil, fmt.Errorf("pca: project dimension %d, model has %d", x.Cols, m.Dim)
	}
	d := m.Dim
	out := vec.NewMatrix(x.Rows, d)
	row := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = float64(src[j])
			if m.Mean != nil {
				row[j] -= m.Mean[j]
			}
		}
		dst := out.Row(i)
		for j := 0; j < d; j++ {
			var s float64
			for k := 0; k < d; k++ {
				s += row[k] * m.Components.At(k, j)
			}
			dst[j] = float32(s)
		}
	}
	return out, nil
}

// ProjectVec maps a single vector onto the PCA basis.
func (m *Model) ProjectVec(x []float32) ([]float32, error) {
	tmp := &vec.Matrix{Rows: 1, Cols: len(x), Data: x}
	out, err := m.Project(tmp)
	if err != nil {
		return nil, err
	}
	return out.Row(0), nil
}

// PermuteComponents reorders the eigenpairs according to perm: the new j-th
// component is the old perm[j]-th. Used by VAQ's partial balancing step and
// by OPQ's eigenvalue-allocation permutation.
func (m *Model) PermuteComponents(perm []int) error {
	if len(perm) != m.Dim {
		return fmt.Errorf("pca: permutation length %d != dim %d", len(perm), m.Dim)
	}
	seen := make([]bool, m.Dim)
	for _, p := range perm {
		if p < 0 || p >= m.Dim || seen[p] {
			return fmt.Errorf("pca: invalid permutation entry %d", p)
		}
		seen[p] = true
	}
	vals := make([]float64, m.Dim)
	comp := linalg.NewDense(m.Dim, m.Dim)
	for j, p := range perm {
		vals[j] = m.Eigenvalues[p]
		for i := 0; i < m.Dim; i++ {
			comp.Set(i, j, m.Components.At(i, p))
		}
	}
	m.Eigenvalues = vals
	m.Components = comp
	return nil
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{
		Dim:         m.Dim,
		Eigenvalues: append([]float64(nil), m.Eigenvalues...),
		Components:  m.Components.Clone(),
	}
	if m.Mean != nil {
		c.Mean = append([]float64(nil), m.Mean...)
	}
	return c
}
