// Package imi implements the Inverted Multi-Index (Babenko & Lempitsky;
// paper §II-C and Figure 11, "IMI+OPQ") over OPQ-encoded data: the rotated
// space is split into two halves, each coarsely quantized by k-means, and
// the Cartesian product of the two coarse codebooks forms a fine-grained
// cell grid. Queries traverse cells in increasing distance order with the
// multi-sequence algorithm, collect a bounded candidate list, and rank the
// candidates with the OPQ ADC lookup tables.
//
// As the paper observes, this speeds queries up but cannot improve recall
// over the exhaustive OPQ scan — candidates outside the visited cells are
// lost. That trade-off is exactly what Figure 11 measures.
package imi

import (
	"container/heap"
	"fmt"
	"sort"

	"vaq/internal/kmeans"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// Config controls Build.
type Config struct {
	// CoarseBits: each half uses 2^CoarseBits coarse centroids, giving
	// 4^CoarseBits cells (paper-scale uses 2^14 per half; at laptop scale
	// 6-8 bits is proportionate).
	CoarseBits int
	// OPQ is the fine quantizer configuration.
	OPQ quantizer.OPQConfig
	// Seed drives the coarse k-means.
	Seed int64
}

// Index is a built inverted multi-index.
type Index struct {
	opq      *quantizer.OPQ
	books    [2]*vec.Matrix
	halfDim  [2]int
	cells    map[uint32][]int32
	k        int // coarse centroids per half
	n        int
	queryDim int
}

// Build trains the OPQ fine quantizer and the two-half coarse structure.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if cfg.CoarseBits < 1 || cfg.CoarseBits > 12 {
		return nil, fmt.Errorf("imi: CoarseBits=%d out of range [1,12]", cfg.CoarseBits)
	}
	opq, err := quantizer.TrainOPQ(train, data, cfg.OPQ)
	if err != nil {
		return nil, err
	}
	d := train.Cols
	h0 := d / 2
	h1 := d - h0
	ix := &Index{
		opq:      opq,
		halfDim:  [2]int{h0, h1},
		cells:    make(map[uint32][]int32),
		k:        1 << cfg.CoarseBits,
		n:        data.Rows,
		queryDim: d,
	}
	// Transform base vectors once.
	rot := vec.NewMatrix(data.Rows, d)
	for i := 0; i < data.Rows; i++ {
		z, err := opq.TransformQuery(data.Row(i))
		if err != nil {
			return nil, err
		}
		copy(rot.Row(i), z)
	}
	halves := [2]*vec.Matrix{
		rot.SelectColumnsRange(0, h0),
		rot.SelectColumnsRange(h0, d),
	}
	for h := 0; h < 2; h++ {
		res, err := kmeans.Train(halves[h], kmeans.Config{
			K:        ix.k,
			Seed:     cfg.Seed + int64(h),
			Parallel: true,
		})
		if err != nil {
			return nil, err
		}
		ix.books[h] = res.Centroids
	}
	// Coarse cell assignment.
	for i := 0; i < data.Rows; i++ {
		c0 := kmeans.AssignNearest(ix.books[0], halves[0].Row(i))
		c1 := kmeans.AssignNearest(ix.books[1], halves[1].Row(i))
		key := uint32(c0)<<16 | uint32(c1)
		ix.cells[key] = append(ix.cells[key], int32(i))
	}
	return ix, nil
}

// Len reports the number of indexed vectors.
func (ix *Index) Len() int { return ix.n }

// msNode is a multi-sequence frontier entry.
type msNode struct {
	i, j int
	dist float32
}

type msHeap []msNode

func (h msHeap) Len() int            { return len(h) }
func (h msHeap) Less(a, b int) bool  { return h[a].dist < h[b].dist }
func (h msHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *msHeap) Push(x interface{}) { *h = append(*h, x.(msNode)) }
func (h *msHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search visits cells in increasing distance order until at least
// candidates ids are collected (or cells are exhausted), then ranks them
// with the OPQ lookup tables and returns the k best.
func (ix *Index) Search(q []float32, k, candidates int) ([]vec.Neighbor, error) {
	if len(q) != ix.queryDim {
		return nil, fmt.Errorf("imi: query dim %d, index dim %d", len(q), ix.queryDim)
	}
	if k < 1 {
		return nil, fmt.Errorf("imi: k must be >= 1, got %d", k)
	}
	if candidates < k {
		candidates = k
	}
	z, err := ix.opq.TransformQuery(q)
	if err != nil {
		return nil, err
	}
	// Distances to coarse centroids per half, sorted ascending.
	type scored struct {
		id   int
		dist float32
	}
	var order [2][]scored
	for h := 0; h < 2; h++ {
		var part []float32
		if h == 0 {
			part = z[:ix.halfDim[0]]
		} else {
			part = z[ix.halfDim[0]:]
		}
		list := make([]scored, ix.k)
		for c := 0; c < ix.k; c++ {
			list[c] = scored{c, vec.SquaredL2(part, ix.books[h].Row(c))}
		}
		sort.Slice(list, func(a, b int) bool { return list[a].dist < list[b].dist })
		order[h] = list
	}
	// Multi-sequence traversal.
	collected := make([]int32, 0, candidates)
	frontier := &msHeap{{0, 0, order[0][0].dist + order[1][0].dist}}
	pushed := map[[2]int]bool{{0, 0}: true}
	for frontier.Len() > 0 && len(collected) < candidates {
		nd := heap.Pop(frontier).(msNode)
		key := uint32(order[0][nd.i].id)<<16 | uint32(order[1][nd.j].id)
		collected = append(collected, ix.cells[key]...)
		if nd.i+1 < ix.k {
			p := [2]int{nd.i + 1, nd.j}
			if !pushed[p] {
				pushed[p] = true
				heap.Push(frontier, msNode{p[0], p[1], order[0][p[0]].dist + order[1][p[1]].dist})
			}
		}
		if nd.j+1 < ix.k {
			p := [2]int{nd.i, nd.j + 1}
			if !pushed[p] {
				pushed[p] = true
				heap.Push(frontier, msNode{p[0], p[1], order[0][p[0]].dist + order[1][p[1]].dist})
			}
		}
	}
	// Rank candidates with the OPQ ADC tables.
	lut := ix.opq.Codebooks().BuildLUT(z)
	codes := ix.opq.Codes()
	tk := vec.NewTopK(k)
	for _, id := range collected {
		tk.Push(int(id), lut.Distance(codes.Row(int(id))))
	}
	return tk.Results(), nil
}
