package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket i covers latencies in
// (base·2^(i-1), base·2^i] with base = 1µs, so the 40 buckets span 1µs to
// ~150 hours. Fixed buckets keep Observe lock-free (one atomic add) and
// snapshots mergeable; the exponential spacing bounds the relative error
// of any interpolated quantile by 2x, which is plenty for p50/p95/p99
// trend tracking.
const (
	histBuckets = 40
	histBaseNs  = 1_000 // 1µs
)

// Histogram is a fixed-bucket, concurrency-safe latency histogram.
// The zero value is ready to use. Observe is lock-free.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sumNs  atomic.Int64
	total  atomic.Uint64
}

// bucketFor maps a duration to its bucket index in O(1) via the bit length
// of d/base (buckets are powers of two).
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= histBaseNs {
		return 0
	}
	b := bits.Len64(uint64((ns - 1) / histBaseNs))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketFor(d)].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.total.Add(1)
}

// Reset zeroes all buckets. Not atomic with respect to concurrent
// Observe calls; intended for test setup and benchmark warmup.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sumNs.Store(0)
	h.total.Store(0)
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.total.Load()
	s.SumNs = h.sumNs.Load()
	s.Buckets = make([]uint64, histBuckets)
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, suitable for JSON
// export. Buckets[i] counts samples in (1µs·2^(i-1), 1µs·2^i].
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// BucketUpperBound returns the inclusive upper edge of bucket i.
func BucketUpperBound(i int) time.Duration {
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return time.Duration(histBaseNs << uint(i))
}

// Mean returns the average observed latency (0 if empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket. Returns 0 if empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := float64(BucketUpperBound(i)) / 2
			if i == 0 {
				lo = 0
			}
			hi := float64(BucketUpperBound(i))
			frac := (rank - cum) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return BucketUpperBound(len(s.Buckets) - 1)
}
