// Package vec provides the flat float32 matrix representation and the
// distance kernels shared by every quantizer and index in this repository.
//
// Vectors live in row-major order inside a single backing slice so that
// scans walk memory sequentially. Training-time linear algebra happens in
// float64 (package linalg); everything on the query path stays in float32,
// mirroring how production ANN libraries lay out data.
package vec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Matrix is an n x d row-major matrix of float32 values.
// The zero value is an empty matrix.
type Matrix struct {
	Rows int
	Cols int
	Data []float32
}

// NewMatrix allocates an n x d matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix by copying the given rows. All rows must share
// the same length.
func FromRows(rows [][]float32) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("vec: row %d has length %d, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SliceRows returns a view of rows [lo, hi). The view shares storage.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("vec: SliceRows[%d:%d] out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// SelectRowsCopy returns a new matrix containing copies of the given rows
// in order.
func (m *Matrix) SelectRowsCopy(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// SelectColumns returns a new matrix containing the given columns in order.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	out := NewMatrix(m.Rows, len(cols))
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for j, c := range cols {
			dst[j] = src[c]
		}
	}
	return out
}

// SelectColumnsRange returns a new matrix containing columns [lo, hi).
func (m *Matrix) SelectColumnsRange(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("vec: SelectColumnsRange[%d:%d] out of range for %d cols", lo, hi, m.Cols))
	}
	out := NewMatrix(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// PermuteColumns returns a new matrix whose column j is the perm[j]-th
// column of m. perm must be a permutation of [0, Cols).
func (m *Matrix) PermuteColumns(perm []int) (*Matrix, error) {
	if len(perm) != m.Cols {
		return nil, fmt.Errorf("vec: permutation length %d != %d columns", len(perm), m.Cols)
	}
	seen := make([]bool, m.Cols)
	for _, p := range perm {
		if p < 0 || p >= m.Cols || seen[p] {
			return nil, fmt.Errorf("vec: invalid permutation entry %d", p)
		}
		seen[p] = true
	}
	return m.SelectColumns(perm), nil
}

// MulTransposed computes m * bT' where bT is given row-major as (k x d):
// the result is (n x k) with result[i][j] = <m.Row(i), bT.Row(j)>.
func (m *Matrix) MulTransposed(bT *Matrix) (*Matrix, error) {
	if m.Cols != bT.Cols {
		return nil, fmt.Errorf("vec: dimension mismatch %d vs %d", m.Cols, bT.Cols)
	}
	out := NewMatrix(m.Rows, bT.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		ro := out.Row(i)
		for j := 0; j < bT.Rows; j++ {
			ro[j] = Dot(ri, bT.Row(j))
		}
	}
	return out, nil
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

var magicMatrix = [4]byte{'V', 'A', 'Q', '1'}

// WriteTo serializes the matrix in a compact little-endian binary format.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var hdr [20]byte
	copy(hdr[:4], magicMatrix[:])
	binary.LittleEndian.PutUint64(hdr[4:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.Cols))
	n, err := w.Write(hdr[:])
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 4*8192)
	for off := 0; off < len(m.Data); {
		chunk := len(m.Data) - off
		if chunk > 8192 {
			chunk = 8192
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(m.Data[off+i]))
		}
		n, err := w.Write(buf[:4*chunk])
		total += int64(n)
		if err != nil {
			return total, err
		}
		off += chunk
	}
	return total, nil
}

// ReadMatrix deserializes a matrix written by WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("vec: reading matrix header: %w", err)
	}
	if [4]byte(hdr[:4]) != magicMatrix {
		return nil, errors.New("vec: bad matrix magic")
	}
	rows := int(binary.LittleEndian.Uint64(hdr[4:]))
	cols := int(binary.LittleEndian.Uint64(hdr[12:]))
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<40)/cols) {
		return nil, fmt.Errorf("vec: implausible matrix shape %dx%d", rows, cols)
	}
	m := NewMatrix(rows, cols)
	buf := make([]byte, 4*8192)
	for off := 0; off < len(m.Data); {
		chunk := len(m.Data) - off
		if chunk > 8192 {
			chunk = 8192
		}
		if _, err := io.ReadFull(r, buf[:4*chunk]); err != nil {
			return nil, fmt.Errorf("vec: reading matrix body: %w", err)
		}
		for i := 0; i < chunk; i++ {
			m.Data[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		off += chunk
	}
	return m, nil
}
