package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// PrometheusContentType is the text exposition format version this package
// emits (the format every Prometheus-compatible scraper accepts).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func init() {
	http.HandleFunc("/debug/vaq/metrics", handlePrometheus)
}

// handlePrometheus serves every published registry (metrics.Publish) in
// Prometheus text format; ?index=NAME restricts to one.
func handlePrometheus(w http.ResponseWriter, r *http.Request) {
	var names []string
	if want := r.URL.Query().Get("index"); want != "" {
		if _, ok := registry.Load(want); !ok {
			http.Error(w, fmt.Sprintf("no index published as %q", want), http.StatusNotFound)
			return
		}
		names = []string{want}
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	WritePrometheus(w, names...) //nolint:errcheck // best-effort HTTP body
	WriteRuntimeMetrics(w)       //nolint:errcheck // best-effort HTTP body
}

// promFamily describes one exported counter family.
type promFamily struct {
	name string
	help string
	val  func(s Snapshot) uint64
}

var promCounters = []promFamily{
	{"vaq_queries_total", "Completed searches.", func(s Snapshot) uint64 { return s.Queries }},
	{"vaq_errors_total", "Searches rejected by validation or execution.", func(s Snapshot) uint64 { return s.Errors }},
	{"vaq_clusters_visited_total", "TI clusters scanned.", func(s Snapshot) uint64 { return s.ClustersVisited }},
	{"vaq_codes_considered_total", "Encoded vectors reached by the scan loop.", func(s Snapshot) uint64 { return s.CodesConsidered }},
	{"vaq_codes_skipped_ti_total", "Codes pruned by the triangle-inequality bound.", func(s Snapshot) uint64 { return s.CodesSkippedTI }},
	{"vaq_codes_abandoned_ea_total", "Codes whose lookup accumulation was cut short.", func(s Snapshot) uint64 { return s.CodesAbandonedEA }},
	{"vaq_lookups_total", "Subspace table accumulations performed.", func(s Snapshot) uint64 { return s.Lookups }},
	{"vaq_recall_samples_total", "Queries shadow-verified against an exact scan.", func(s Snapshot) uint64 { return s.RecallSamples }},
	{"vaq_recall_hits_total", "True neighbors found in sampled approximate answers.", func(s Snapshot) uint64 { return s.RecallHits }},
	{"vaq_recall_expected_total", "True neighbors expected in sampled answers.", func(s Snapshot) uint64 { return s.RecallExpected }},
}

// promGauges are the scalar drift gauges; vaq_subspace_mse (vector, one
// sample per subspace) is emitted alongside them in WritePrometheus.
var promGauges = []struct {
	name string
	help string
	val  func(s Snapshot) float64
}{
	{"vaq_drift_ratio", "EWMA incoming-vector MSE over the Build-time baseline (1 = no drift, 0 = no baseline).",
		func(s Snapshot) float64 { return s.DriftRatio }},
	{"vaq_dead_codewords", "Dictionary entries no code currently references, summed over subspaces.",
		func(s Snapshot) float64 { return float64(s.DeadCodewords) }},
	{"vaq_drift_alert", "1 while the drift ratio sits above Config.DriftAlertRatio.",
		func(s Snapshot) float64 {
			if s.DriftAlert {
				return 1
			}
			return 0
		}},
}

// promSLOGauges are the error-budget gauges, emitted only for indexes with
// a configured SLO (ConfigureSLO).
var promSLOGauges = []struct {
	name string
	help string
	val  func(s *SLOSnapshot) float64
}{
	{"vaq_slo_latency_budget_remaining", "Unspent fraction of the allowed latency-target violations over the sliding window (< 0 = objective broken).",
		func(s *SLOSnapshot) float64 { return s.LatencyBudgetRemaining }},
	{"vaq_slo_recall_budget_remaining", "Normalized headroom of windowed observed recall above the MinRecall objective (< 0 = objective broken).",
		func(s *SLOSnapshot) float64 { return s.RecallBudgetRemaining }},
	{"vaq_slo_burn_rate", "Latency violation rate over the allowed rate (1 = spending exactly the budget, > 1 = burning it down).",
		func(s *SLOSnapshot) float64 { return s.BurnRate }},
	{"vaq_slo_breach", "1 while an SLO error budget sits exhausted (the edge-triggered breach latch, scrape-visible).",
		func(s *SLOSnapshot) float64 {
			if s.LatencyExhausted || s.RecallExhausted {
				return 1
			}
			return 0
		}},
}

// promShardedGauges are the scatter-gather skew gauges, emitted only for
// merged sharded registries (ConfigureSharded).
var promShardedGauges = []struct {
	name string
	help string
	val  func(s *ShardedSnapshot) float64
}{
	{"vaq_shard_skew_ratio", "Windowed mean of per-query slowest-shard latency over mean shard latency (1 = balanced scatter).",
		func(s *ShardedSnapshot) float64 { return s.SkewRatio }},
	{"vaq_shard_load_imbalance", "Busiest shard's windowed latency total over the mean shard's (persistent skew).",
		func(s *ShardedSnapshot) float64 { return s.LoadImbalance }},
	{"vaq_skew_alert", "1 while the windowed skew ratio sits at or above the configured alert threshold.",
		func(s *ShardedSnapshot) float64 {
			if s.SkewAlert {
				return 1
			}
			return 0
		}},
}

// WritePrometheus emits the published registries in Prometheus text
// exposition format v0.0.4, each metric labeled with the expvar name it
// was published under. With names given, only those indexes are emitted
// (unknown names are skipped); otherwise all published indexes are, in
// sorted-name order so the output is deterministic.
func WritePrometheus(w io.Writer, names ...string) error {
	if len(names) == 0 {
		registry.Range(func(k, _ any) bool {
			names = append(names, k.(string))
			return true
		})
		sort.Strings(names)
	}
	snaps := make(map[string]Snapshot, len(names))
	kept := names[:0]
	for _, name := range names {
		v, ok := registry.Load(name)
		if !ok {
			continue
		}
		snaps[name] = v.(*IndexMetrics).Snapshot()
		kept = append(kept, name)
	}
	return writePrometheusSnaps(w, kept, snaps)
}

// WritePrometheusFor emits one registry in Prometheus text format under the
// given index label, published or not — the incident-bundle writer uses it
// so a bundle's scrape reflects exactly the index that triggered it.
func WritePrometheusFor(w io.Writer, name string, m *IndexMetrics) error {
	if m == nil {
		return nil
	}
	return writePrometheusSnaps(w, []string{name}, map[string]Snapshot{name: m.Snapshot()})
}

// writePrometheusSnaps is the shared exposition body behind WritePrometheus
// and WritePrometheusFor.
func writePrometheusSnaps(w io.Writer, names []string, snaps map[string]Snapshot) error {
	for _, fam := range promCounters {
		if err := writeFamilyHeader(w, fam.name, fam.help); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "%s{index=%q} %d\n", fam.name, name, fam.val(snaps[name])); err != nil {
				return err
			}
		}
	}
	// Quantization-drift gauges (overwritten by the index on Build/Add, not
	// accumulated — TYPE gauge so scrapers treat dips as real).
	if err := writeTypedHeader(w, "vaq_subspace_mse",
		"Per-subspace EWMA reconstruction MSE of vectors folded in by Add (seeded with the Build-time baseline).", "gauge"); err != nil {
		return err
	}
	for _, name := range names {
		for sub, v := range snaps[name].SubspaceMSE {
			if _, err := fmt.Fprintf(w, "vaq_subspace_mse{index=%q,subspace=\"%d\"} %g\n", name, sub, v); err != nil {
				return err
			}
		}
	}
	for _, fam := range promGauges {
		if err := writeTypedHeader(w, fam.name, fam.help, "gauge"); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "%s{index=%q} %g\n", fam.name, name, fam.val(snaps[name])); err != nil {
				return err
			}
		}
	}
	// SLO error-budget gauges: only indexes with configured objectives emit
	// rows, and the families appear only when at least one does, so
	// SLO-free deployments scrape unchanged output.
	var sloNames []string
	for _, name := range names {
		if snaps[name].SLO != nil {
			sloNames = append(sloNames, name)
		}
	}
	if len(sloNames) > 0 {
		for _, fam := range promSLOGauges {
			if err := writeTypedHeader(w, fam.name, fam.help, "gauge"); err != nil {
				return err
			}
			for _, name := range sloNames {
				if _, err := fmt.Fprintf(w, "%s{index=%q} %g\n", fam.name, name, fam.val(snaps[name].SLO)); err != nil {
					return err
				}
			}
		}
	}
	// Multi-window burn-rate evaluation: only registries with an armed
	// history collector (SetBurn) emit rows, one per (objective, rule)
	// pair, and the families appear only when at least one does, so
	// history-free deployments scrape unchanged output.
	var burnNames []string
	for _, name := range names {
		if b := snaps[name].Burn; b != nil && len(b.Rules) > 0 {
			burnNames = append(burnNames, name)
		}
	}
	if len(burnNames) > 0 {
		writeBurn := func(family, help string, val func(r BurnRuleStatus) float64) error {
			if err := writeTypedHeader(w, family, help, "gauge"); err != nil {
				return err
			}
			for _, name := range burnNames {
				for _, r := range snaps[name].Burn.Rules {
					if _, err := fmt.Fprintf(w, "%s{index=%q,objective=%q,rule=%q} %g\n",
						family, name, r.Objective, r.Rule, val(r)); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := writeBurn("vaq_burn_rate",
			"Error-budget burn rate over the rule's long window (1 = spending exactly the budget).",
			func(r BurnRuleStatus) float64 { return r.Burn }); err != nil {
			return err
		}
		if err := writeBurn("vaq_burn_short_rate",
			"Error-budget burn rate over the rule's short confirmation window.",
			func(r BurnRuleStatus) float64 { return r.ShortBurn }); err != nil {
			return err
		}
		if err := writeBurn("vaq_burn_threshold",
			"Burn rate at or above which the rule fires (both windows must agree).",
			func(r BurnRuleStatus) float64 { return r.Threshold }); err != nil {
			return err
		}
		if err := writeBurn("vaq_burn_alert",
			"1 while the multi-window burn-rate rule is firing (the vaq.burn.* edge latch).",
			func(r BurnRuleStatus) float64 {
				if r.Firing {
					return 1
				}
				return 0
			}); err != nil {
			return err
		}
	}
	// Scatter-gather straggler/skew telemetry: only merged sharded
	// registries (ConfigureSharded) emit rows, and the families appear only
	// when at least one does, so unsharded deployments scrape unchanged
	// output.
	var shardedNames []string
	for _, name := range names {
		if snaps[name].Sharded != nil {
			shardedNames = append(shardedNames, name)
		}
	}
	if len(shardedNames) > 0 {
		if err := writeFamilyHeader(w, "vaq_shard_critical_path_total",
			"Queries where this shard was the slowest of the scatter (the critical path)."); err != nil {
			return err
		}
		for _, name := range shardedNames {
			for shard, v := range snaps[name].Sharded.CriticalPath {
				if _, err := fmt.Fprintf(w, "vaq_shard_critical_path_total{index=%q,shard=\"%d\"} %d\n", name, shard, v); err != nil {
					return err
				}
			}
		}
		if err := writeFamilyHeader(w, "vaq_shard_hits_total",
			"Final top-k results this shard contributed to merged answers."); err != nil {
			return err
		}
		for _, name := range shardedNames {
			for shard, v := range snaps[name].Sharded.Hits {
				if _, err := fmt.Fprintf(w, "vaq_shard_hits_total{index=%q,shard=\"%d\"} %d\n", name, shard, v); err != nil {
					return err
				}
			}
		}
		for _, fam := range promShardedGauges {
			if err := writeTypedHeader(w, fam.name, fam.help, "gauge"); err != nil {
				return err
			}
			for _, name := range shardedNames {
				if _, err := fmt.Fprintf(w, "%s{index=%q} %g\n", fam.name, name, fam.val(snaps[name].Sharded)); err != nil {
					return err
				}
			}
		}
		if err := writeTypedHeader(w, "vaq_shard_straggler_delta_seconds",
			"Per-query latency gap between the slowest shard and the runner-up.", "histogram"); err != nil {
			return err
		}
		for _, name := range shardedNames {
			if err := writeHistogram(w, "vaq_shard_straggler_delta_seconds", name, snaps[name].Sharded.StragglerDelta); err != nil {
				return err
			}
		}
	}
	// Attribution histograms: plain counter families with a position label
	// (they are distributions over subspace depth / cluster rank, not over
	// an observed value, so buckets-as-counters is the honest encoding).
	if err := writeFamilyHeader(w, "vaq_ea_abandon_depth_total",
		"Codes early-abandoned after exactly this many table lookups."); err != nil {
		return err
	}
	for _, name := range names {
		for depth, v := range snaps[name].AbandonDepths {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "vaq_ea_abandon_depth_total{index=%q,lookups=\"%d\"} %d\n", name, depth, v); err != nil {
				return err
			}
		}
	}
	if err := writeFamilyHeader(w, "vaq_ti_skips_by_rank_total",
		"Codes TI-pruned inside the rank-th nearest visited cluster (last rank clamps the tail)."); err != nil {
		return err
	}
	for _, name := range names {
		for rank, v := range snaps[name].TISkipsByRank {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "vaq_ti_skips_by_rank_total{index=%q,rank=\"%d\"} %d\n", name, rank, v); err != nil {
				return err
			}
		}
	}
	// Latency histogram in native Prometheus histogram form.
	if err := writeTypedHeader(w, "vaq_query_latency_seconds", "Per-query wall time (scan path).", "histogram"); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeHistogram(w, "vaq_query_latency_seconds", name, snaps[name].Latency); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one HistogramSnapshot in native Prometheus
// histogram form (cumulative buckets, sum, count) under fam{index=name}.
func writeHistogram(w io.Writer, fam, name string, h HistogramSnapshot) error {
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		le := BucketUpperBound(i).Seconds()
		if _, err := fmt.Fprintf(w, "%s_bucket{index=%q,le=\"%g\"} %d\n", fam, name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{index=%q,le=\"+Inf\"} %d\n", fam, name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{index=%q} %g\n", fam, name, float64(h.SumNs)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{index=%q} %d\n", fam, name, h.Count)
	return err
}

func writeFamilyHeader(w io.Writer, name, help string) error {
	return writeTypedHeader(w, name, help, "counter")
}

func writeTypedHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}
