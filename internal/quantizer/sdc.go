package quantizer

import (
	"fmt"

	"vaq/internal/vec"
)

// SDCTable caches the pairwise squared distances between dictionary items
// of each subspace, enabling Symmetric Distance Computation (paper §II-C):
// both the query and the database vectors are encoded, and distances
// accumulate as d_SDC(C(x), C(q)) = Σ_s ||c_s[x_s] - c_s[q_s]||².
//
// SDC trades a little accuracy (the query is quantized too) for never
// touching float vectors at query time — useful when queries arrive
// already encoded (e.g. from another shard).
type SDCTable struct {
	m       int
	sizes   []int
	offsets []int
	dist    []float32 // per subspace: k_s x k_s matrix, flattened
}

// BuildSDCTable precomputes the per-subspace codeword distance matrices.
// Memory is Σ_s k_s² floats, so it suits dictionaries up to ~2^10 entries.
func (cb *Codebooks) BuildSDCTable() *SDCTable {
	m := cb.Sub.M()
	t := &SDCTable{m: m, sizes: make([]int, m), offsets: make([]int, m+1)}
	total := 0
	for s := 0; s < m; s++ {
		k := cb.Books[s].Rows
		t.sizes[s] = k
		t.offsets[s] = total
		total += k * k
	}
	t.offsets[m] = total
	t.dist = make([]float32, total)
	for s := 0; s < m; s++ {
		book := cb.Books[s]
		k := book.Rows
		base := t.offsets[s]
		for a := 0; a < k; a++ {
			ra := book.Row(a)
			for b := a + 1; b < k; b++ {
				d := vec.SquaredL2(ra, book.Row(b))
				t.dist[base+a*k+b] = d
				t.dist[base+b*k+a] = d
			}
		}
	}
	return t
}

// Distance accumulates the symmetric distance between two code words.
func (t *SDCTable) Distance(a, b []uint16) float32 {
	var d float32
	for s := 0; s < t.m; s++ {
		k := t.sizes[s]
		d += t.dist[t.offsets[s]+int(a[s])*k+int(b[s])]
	}
	return d
}

// ScanSDC scans all codes against an encoded query, returning the k
// nearest by symmetric distance.
func ScanSDC(codes *Codes, t *SDCTable, qCode []uint16, k int) ([]vec.Neighbor, error) {
	if len(qCode) != codes.M || codes.M != t.m {
		return nil, fmt.Errorf("quantizer: SDC width mismatch: query %d, codes %d, table %d",
			len(qCode), codes.M, t.m)
	}
	tk := vec.NewTopK(k)
	m := codes.M
	for i := 0; i < codes.N; i++ {
		row := codes.Data[i*m : (i+1)*m]
		var d float32
		for s := 0; s < m; s++ {
			kk := t.sizes[s]
			d += t.dist[t.offsets[s]+int(qCode[s])*kk+int(row[s])]
		}
		tk.Push(i, d)
	}
	return tk.Results(), nil
}

// SearchSDC encodes the query with the PQ dictionaries and scans
// symmetrically. The table is built per call unless one is supplied; for
// batch workloads build it once with Codebooks().BuildSDCTable().
func (p *PQ) SearchSDC(q []float32, k int, table *SDCTable) ([]vec.Neighbor, error) {
	if len(q) != p.cb.Sub.Dim() {
		return nil, fmt.Errorf("quantizer: query dim %d, index dim %d", len(q), p.cb.Sub.Dim())
	}
	if k < 1 {
		return nil, fmt.Errorf("quantizer: k must be >= 1, got %d", k)
	}
	if table == nil {
		table = p.cb.BuildSDCTable()
	}
	qCode := make([]uint16, p.cb.Sub.M())
	p.cb.EncodeVec(q, qCode)
	return ScanSDC(p.codes, table, qCode, k)
}
