package history

import (
	"fmt"
	"time"
)

// DumpSchemaVersion versions the history.json frozen-dump schema.
const DumpSchemaVersion = 1

// Dump is a frozen, self-describing capture of everything a collector
// retains: the incident bundle's history.json member and the JSON body of
// /debug/vaq/history. Timestamps are unix milliseconds throughout.
type Dump struct {
	SchemaVersion int          `json:"schema_version"`
	Collector     string       `json:"collector"`
	CapturedAtMs  int64        `json:"captured_at_ms"`
	IntervalMs    int64        `json:"interval_ms"`
	Samples       uint64       `json:"samples"`
	Targets       []TargetDump `json:"targets"`
}

// TargetDump is one watched registry's retained series (the merged index,
// or one shard).
type TargetDump struct {
	Name   string       `json:"name"`
	Series []SeriesDump `json:"series"`
}

// SeriesDump is one series across all three retention tiers, each oldest
// first.
type SeriesDump struct {
	Name string   `json:"name"`
	Kind string   `json:"kind"`
	Raw  []Point  `json:"raw"`
	Mid  []Bucket `json:"mid,omitempty"`
	Long []Bucket `json:"long,omitempty"`
}

// Dump freezes the collector's current state. Safe to call concurrently
// with sampling; each series is captured with the same torn-read
// validation the query API uses.
func (c *Collector) Dump() *Dump {
	c.mu.RLock()
	targets := append([]*target(nil), c.targets...)
	c.mu.RUnlock()
	d := &Dump{
		SchemaVersion: DumpSchemaVersion,
		Collector:     c.name,
		CapturedAtMs:  time.Now().UnixMilli(),
		IntervalMs:    c.cfg.Interval.Milliseconds(),
		Samples:       c.samples.Load(),
	}
	for _, t := range targets {
		td := TargetDump{Name: t.name}
		t.each(func(s *Series) {
			td.Series = append(td.Series, SeriesDump{
				Name: s.name,
				Kind: s.kind.String(),
				Raw:  s.rawPoints(),
				Mid:  s.mid.snapshot(),
				Long: s.long.snapshot(),
			})
		})
		d.Targets = append(d.Targets, td)
	}
	return d
}

// ValidateDump checks a dump's internal consistency: schema version, and
// per series that raw timestamps are non-decreasing and every downsampled
// bucket is well-formed (Start < End, non-empty, non-decreasing, within
// tier order). vaqdiag runs this against a bundle's history.json after the
// manifest hash check.
func ValidateDump(d *Dump) error {
	if d == nil {
		return fmt.Errorf("history: nil dump")
	}
	if d.SchemaVersion != DumpSchemaVersion {
		return fmt.Errorf("history: unsupported schema version %d (want %d)", d.SchemaVersion, DumpSchemaVersion)
	}
	for _, t := range d.Targets {
		for _, s := range t.Series {
			where := fmt.Sprintf("target %q series %q", t.Name, s.Name)
			for i := 1; i < len(s.Raw); i++ {
				if s.Raw[i].TS < s.Raw[i-1].TS {
					return fmt.Errorf("history: %s: raw timestamps regress at index %d (%d < %d)",
						where, i, s.Raw[i].TS, s.Raw[i-1].TS)
				}
			}
			if err := validateBuckets(where+" mid", s.Mid); err != nil {
				return err
			}
			if err := validateBuckets(where+" long", s.Long); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateBuckets(where string, bs []Bucket) error {
	for i, b := range bs {
		if b.Start >= b.End {
			return fmt.Errorf("history: %s: bucket %d has start %d >= end %d", where, i, b.Start, b.End)
		}
		if b.Count == 0 {
			return fmt.Errorf("history: %s: bucket %d is empty", where, i)
		}
		if b.Min > b.Max {
			return fmt.Errorf("history: %s: bucket %d has min %g > max %g", where, i, b.Min, b.Max)
		}
		if i > 0 && b.Start < bs[i-1].Start {
			return fmt.Errorf("history: %s: bucket %d starts before bucket %d", where, i, i-1)
		}
	}
	return nil
}
