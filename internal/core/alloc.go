package core

import (
	"fmt"
	"math"

	"vaq/internal/milp"
)

// AllocStrategy selects how the bit budget is distributed over subspaces.
type AllocStrategy int

const (
	// AllocMILP is the paper's constrained-optimization allocation
	// (§III-C): maximize Σ wᵢ·yᵢ subject to C1-C4, solved by branch &
	// bound over the LP relaxation.
	AllocMILP AllocStrategy = iota
	// AllocTransformCoding is the classic closed-form reverse-water-filling
	// rule from transform coding: bᵢ = b̄ + ½·log2(λᵢ / geomean λ),
	// clamped and integer-repaired. Provided as an ablation alternative.
	AllocTransformCoding
	// AllocUniform gives every subspace Budget/m bits (PQ/OPQ behaviour),
	// the ablation baseline of Figure 9.
	AllocUniform
)

func (s AllocStrategy) String() string {
	switch s {
	case AllocMILP:
		return "milp"
	case AllocTransformCoding:
		return "transform-coding"
	case AllocUniform:
		return "uniform"
	}
	return "unknown"
}

// BitConstraint is a user-supplied linear constraint over the per-subspace
// bit variables y (one coefficient per subspace): Σ Coeffs[i]·yᵢ  Sense  RHS.
// The paper (§III-C) motivates the MILP formulation precisely because new
// application constraints — workload-aware storage or latency service
// agreements, supervision weights — should compose with C1-C4 without a new
// solver; this hook is that extension point.
type BitConstraint struct {
	Coeffs []float64
	Sense  milp.Sense
	RHS    float64
}

// allocParams bundles the allocation inputs.
type allocParams struct {
	Weights        []float64 // per-subspace variance share, descending
	Budget         int
	MinBits        int
	MaxBits        int
	TargetVariance float64 // C1 threshold (0 < τ <= 1)
	// Extra user constraints over all subspaces (MILP strategy only).
	Extra []BitConstraint
}

func (p *allocParams) validate() error {
	m := len(p.Weights)
	if m == 0 {
		return fmt.Errorf("core: no subspaces to allocate")
	}
	if p.MinBits < 1 {
		return fmt.Errorf("core: MinBits must be >= 1, got %d", p.MinBits)
	}
	if p.MaxBits < p.MinBits || p.MaxBits > 16 {
		return fmt.Errorf("core: MaxBits=%d out of range [MinBits=%d, 16]", p.MaxBits, p.MinBits)
	}
	if p.Budget < m*p.MinBits {
		return fmt.Errorf("core: budget %d below minimum %d (= %d subspaces x %d bits)",
			p.Budget, m*p.MinBits, m, p.MinBits)
	}
	if p.Budget > m*p.MaxBits {
		return fmt.Errorf("core: budget %d above maximum %d (= %d subspaces x %d bits)",
			p.Budget, m*p.MaxBits, m, p.MaxBits)
	}
	if p.TargetVariance <= 0 || p.TargetVariance > 1 {
		return fmt.Errorf("core: TargetVariance %v out of (0, 1]", p.TargetVariance)
	}
	return nil
}

// allocateBits dispatches to the selected strategy. The returned slice has
// one bit count per subspace, summing exactly to the budget, each within
// [MinBits, MaxBits], and non-increasing in subspace importance.
func allocateBits(strategy AllocStrategy, p allocParams) ([]int, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch strategy {
	case AllocMILP:
		return allocateMILP(p)
	case AllocTransformCoding:
		return allocateTransformCoding(p)
	case AllocUniform:
		return allocateUniform(p)
	}
	return nil, fmt.Errorf("core: unknown allocation strategy %d", strategy)
}

// allocateMILP implements Algorithm 2's constraint set:
//
//	C1 — cover the target variance: only the leading H subspaces whose
//	     cumulative variance reaches TargetVariance participate in the
//	     optimization; trailing subspaces receive MinBits.
//	C2 — MinBits <= yᵢ <= MaxBits.
//	C3 — Σ yᵢ equals the budget exactly.
//	C4 — proportionality: allocation is non-increasing in importance
//	     (yᵢ >= yᵢ₊₁) and capped near each subspace's proportional share,
//	     so no subspace can absorb the budget.
//
// If the proportional caps make the program infeasible (possible when
// MaxBits binds), the caps are relaxed and the monotone program is
// re-solved; the monotone program is always feasible given a valid budget.
func allocateMILP(p allocParams) ([]int, error) {
	m := len(p.Weights)
	for i, c := range p.Extra {
		if len(c.Coeffs) != m {
			return nil, fmt.Errorf("core: extra constraint %d has %d coefficients, want %d",
				i, len(c.Coeffs), m)
		}
	}
	// C1: find H, the smallest prefix covering TargetVariance.
	var wTotal float64
	for _, w := range p.Weights {
		wTotal += w
	}
	h := m
	if wTotal > 0 {
		var cum float64
		for i, w := range p.Weights {
			cum += w
			if cum >= p.TargetVariance*wTotal-1e-12 {
				h = i + 1
				break
			}
		}
	}
	// Trailing subspaces get MinBits; ensure the head can still absorb the
	// remaining budget under MaxBits (grow H if not).
	for h < m && p.Budget-(m-h)*p.MinBits > h*p.MaxBits {
		h++
	}
	headBudget := p.Budget - (m-h)*p.MinBits

	bits := make([]int, m)
	for i := h; i < m; i++ {
		bits[i] = p.MinBits
	}
	// Project user constraints onto the head variables: tail variables are
	// fixed at MinBits, so their contribution moves to the RHS.
	extra := make([]milp.Constraint, 0, len(p.Extra))
	for _, c := range p.Extra {
		rhs := c.RHS
		for i := h; i < m; i++ {
			rhs -= c.Coeffs[i] * float64(p.MinBits)
		}
		extra = append(extra, milp.Constraint{
			Coeffs: append([]float64(nil), c.Coeffs[:h]...),
			Sense:  c.Sense,
			RHS:    rhs,
		})
	}
	head, err := solveHeadMILP(p.Weights[:h], headBudget, p.MinBits, p.MaxBits, true, extra)
	if err == milp.ErrInfeasible {
		head, err = solveHeadMILP(p.Weights[:h], headBudget, p.MinBits, p.MaxBits, false, extra)
	}
	if err == milp.ErrInfeasible && h < m {
		// User constraints can make the C1 head split infeasible (e.g. a
		// cap on a leading subspace that pushes budget into the tail).
		// Relax C1: optimize over all subspaces.
		fullExtra := make([]milp.Constraint, len(p.Extra))
		for i, c := range p.Extra {
			fullExtra[i] = milp.Constraint{
				Coeffs: append([]float64(nil), c.Coeffs...),
				Sense:  c.Sense,
				RHS:    c.RHS,
			}
		}
		h = m
		head, err = solveHeadMILP(p.Weights, p.Budget, p.MinBits, p.MaxBits, true, fullExtra)
		if err == milp.ErrInfeasible {
			head, err = solveHeadMILP(p.Weights, p.Budget, p.MinBits, p.MaxBits, false, fullExtra)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: bit allocation MILP: %w", err)
	}
	copy(bits, head)
	return bits, nil
}

// proportionalTargets computes the real-valued allocation that gives each
// subspace lo bits plus a share of the remaining budget proportional to
// its weight, redistributing overflow whenever a share would exceed
// MaxBits (iterative clamping — the bounded version of a proportional
// split). The result sums to the budget and is non-increasing for
// descending weights.
func proportionalTargets(w []float64, budget, lo, hi int) []float64 {
	m := len(w)
	targets := make([]float64, m)
	for i := range targets {
		targets[i] = float64(lo)
	}
	clamped := make([]bool, m)
	remaining := float64(budget - m*lo)
	maxExtra := float64(hi - lo)
	for round := 0; round <= m && remaining > 1e-9; round++ {
		var wSum float64
		free := 0
		for i := range w {
			if !clamped[i] {
				wSum += w[i]
				free++
			}
		}
		if free == 0 {
			break
		}
		overflow := false
		for i := range w {
			if clamped[i] {
				continue
			}
			var share float64
			if wSum > 0 {
				share = remaining * w[i] / wSum
			} else {
				share = remaining / float64(free)
			}
			if share >= maxExtra {
				targets[i] = float64(hi)
				clamped[i] = true
				remaining -= maxExtra
				overflow = true
			}
		}
		if overflow {
			continue
		}
		// No clamping needed: assign final shares.
		for i := range w {
			if clamped[i] {
				continue
			}
			if wSum > 0 {
				targets[i] += remaining * w[i] / wSum
			} else {
				targets[i] += remaining / float64(free)
			}
		}
		remaining = 0
	}
	return targets
}

// solveHeadMILP builds and solves the integer program for the leading h
// subspaces. withCaps enables the proportional C4 bounds: each yᵢ must lie
// within about one bit of its clamped-proportional target, and the linear
// objective Σ wᵢ·yᵢ chooses the best integer rounding inside that band.
func solveHeadMILP(w []float64, budget, lo, hi int, withCaps bool, extra []milp.Constraint) ([]int, error) {
	h := len(w)
	obj := append([]float64(nil), w...)
	cons := make([]milp.Constraint, 0, h+1+len(extra))
	cons = append(cons, extra...)
	// C3: Σ y = budget.
	ones := make([]float64, h)
	for i := range ones {
		ones[i] = 1
	}
	cons = append(cons, milp.Constraint{Coeffs: ones, Sense: milp.EQ, RHS: float64(budget)})
	// C4 (ordering): yᵢ - yᵢ₊₁ >= 0.
	for i := 0; i+1 < h; i++ {
		row := make([]float64, h)
		row[i] = 1
		row[i+1] = -1
		cons = append(cons, milp.Constraint{Coeffs: row, Sense: milp.GE, RHS: 0})
	}
	lower := make([]float64, h)
	upper := make([]float64, h)
	targets := proportionalTargets(w, budget, lo, hi)
	for i := 0; i < h; i++ {
		lower[i] = float64(lo)
		upper[i] = float64(hi)
		if withCaps {
			// C4 (proportionality band around the clamped target).
			if c := math.Ceil(targets[i]) + 1; c < upper[i] {
				upper[i] = c
			}
			if f := math.Floor(targets[i]) - 1; f > lower[i] {
				lower[i] = f
			}
		}
	}
	integer := make([]bool, h)
	for i := range integer {
		integer[i] = true
	}
	sol, err := milp.SolveMILP(&milp.Problem{
		Objective:   obj,
		Constraints: cons,
		Integer:     integer,
		Lower:       lower,
		Upper:       upper,
	})
	if err != nil {
		return nil, err
	}
	bits := make([]int, h)
	for i, v := range sol.X {
		bits[i] = int(math.Round(v))
	}
	return bits, nil
}

// allocateTransformCoding applies the reverse-water-filling rule and then
// repairs the result to an exact-integer, in-bounds, monotone allocation.
func allocateTransformCoding(p allocParams) ([]int, error) {
	m := len(p.Weights)
	mean := float64(p.Budget) / float64(m)
	// Geometric mean over positive weights; zero weights are floored so the
	// log stays finite (they will end up at MinBits anyway).
	logs := make([]float64, m)
	var logSum float64
	for i, w := range p.Weights {
		if w < 1e-12 {
			w = 1e-12
		}
		logs[i] = math.Log2(w)
		logSum += logs[i]
	}
	logMean := logSum / float64(m)
	raw := make([]float64, m)
	for i := range raw {
		raw[i] = mean + 0.5*(logs[i]-logMean)
	}
	bits := make([]int, m)
	for i, r := range raw {
		b := int(math.Round(r))
		if b < p.MinBits {
			b = p.MinBits
		}
		if b > p.MaxBits {
			b = p.MaxBits
		}
		bits[i] = b
	}
	repairBudget(bits, p)
	enforceMonotone(bits, p)
	return bits, nil
}

// allocateUniform spreads the budget evenly, giving leading subspaces the
// remainder.
func allocateUniform(p allocParams) ([]int, error) {
	m := len(p.Weights)
	base := p.Budget / m
	rem := p.Budget % m
	if base < p.MinBits || base+1 > p.MaxBits && rem > 0 || base > p.MaxBits {
		return nil, fmt.Errorf("core: uniform allocation of %d bits over %d subspaces violates [%d,%d]",
			p.Budget, m, p.MinBits, p.MaxBits)
	}
	bits := make([]int, m)
	for i := range bits {
		bits[i] = base
		if i < rem {
			bits[i]++
		}
	}
	return bits, nil
}

// repairBudget adjusts bits so they sum exactly to the budget, preferring
// to add to the most important subspaces and remove from the least.
func repairBudget(bits []int, p allocParams) {
	sum := 0
	for _, b := range bits {
		sum += b
	}
	for sum < p.Budget {
		done := false
		for i := 0; i < len(bits); i++ { // most important first
			if bits[i] < p.MaxBits {
				bits[i]++
				sum++
				done = true
				break
			}
		}
		if !done {
			return // cannot repair (validated budgets make this unreachable)
		}
	}
	for sum > p.Budget {
		done := false
		for i := len(bits) - 1; i >= 0; i-- { // least important first
			if bits[i] > p.MinBits {
				bits[i]--
				sum--
				done = true
				break
			}
		}
		if !done {
			return
		}
	}
}

// enforceMonotone makes the allocation non-increasing without changing its
// sum: any inversion is fixed by swapping values (a permutation of the
// multiset keeps C3 intact, and sorting descending is optimal for
// descending weights).
func enforceMonotone(bits []int, p allocParams) {
	// Simple descending insertion sort; m <= 64.
	for i := 1; i < len(bits); i++ {
		for j := i; j > 0 && bits[j] > bits[j-1]; j-- {
			bits[j], bits[j-1] = bits[j-1], bits[j]
		}
	}
}
