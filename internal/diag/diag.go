// Package diag computes index-quality diagnostics for a built VAQ index:
// the IndexReport. Where the metrics registry (internal/metrics) answers
// "how are queries doing right now", the report answers "do the build-time
// decisions still hold" — per-subspace variance captured vs. bits
// allocated, per-subspace quantization MSE (absolute and as a share of the
// subspace's empirical variance), codeword-utilization histograms with
// entropy and dead-codeword counts, triangle-inequality cluster balance,
// and the overall reconstruction error against the exact projected
// vectors. SAQ-style per-segment distortion accounting is the signal that
// tells an operator when the allocation or the dictionaries have gone
// stale ("retrain or keep serving"); everything here is stdlib-only and
// read-only over the index state it is handed.
package diag

import (
	"math"
	"sort"
	"time"

	"vaq/internal/metrics"
	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// MSE source values for Report.MSESource.
const (
	// MSEFresh: the distortion fields were recomputed against retained
	// projected vectors covering the whole current dataset.
	MSEFresh = "fresh"
	// MSEBaseline: the distortion fields are carried forward from the
	// Build-time baseline (the index does not retain projected vectors, so
	// vectors added since Build are not reflected — watch the drift gauges
	// for those).
	MSEBaseline = "build-baseline"
)

// OccupancyBuckets is the fixed shape of SubspaceReport.OccupancyHist:
// bucket 0 counts dead codewords (zero uses), bucket b >= 1 counts
// codewords used between 2^(b-1) and 2^b - 1 times. 21 buckets cover one
// million uses of a single codeword.
const OccupancyBuckets = 21

// Input is everything Compute reads. All slices and matrices are read-only
// borrows; Compute never mutates or retains them.
type Input struct {
	// N is the number of encoded vectors, Dim the raw query dimensionality.
	N, Dim int
	// Bits is the per-subspace bit allocation (importance order). A zero
	// entry means a degenerate single-entry dictionary.
	Bits []int
	// VarianceShares is each subspace's share of the explained variance
	// from the build-time spectrum (what the allocator optimized against).
	VarianceShares []float64
	// Codebooks are the trained dictionaries; Codes the encoded dataset.
	Codebooks *quantizer.Codebooks
	Codes     *quantizer.Codes
	// ClusterSizes are the triangle-inequality cluster member counts.
	ClusterSizes []int
	// Projected, when non-nil, holds the exact projected (PCA-space)
	// dataset rows, one per code; it enables the distortion fields. nil
	// yields a Partial report (utilization and balance only).
	Projected *vec.Matrix
}

// SubspaceReport is the per-subspace slice of the IndexReport: what the
// allocator gave this subspace, and how the dictionary is holding up.
type SubspaceReport struct {
	// Index is the subspace position (importance order, 0 = most
	// important); Dims how many projected dimensions it spans.
	Index int `json:"index"`
	Dims  int `json:"dims"`
	// Bits is the allocated dictionary exponent; Entries = 2^Bits.
	Bits    int `json:"bits"`
	Entries int `json:"entries"`
	// VarianceShare is the build-time share of explained variance the
	// allocator weighted this subspace by.
	VarianceShare float64 `json:"variance_share"`
	// Variance is the empirical per-vector variance of the projected data
	// inside this subspace (sum over its dimensions); MSE the mean squared
	// quantization error per vector; MSEShare = MSE / Variance, the
	// fraction of the subspace's energy lost to quantization. All three are
	// zero (and meaningless) when the report is Partial.
	Variance float64 `json:"variance,omitempty"`
	MSE      float64 `json:"mse,omitempty"`
	MSEShare float64 `json:"mse_share,omitempty"`
	// DeadCodewords counts dictionary entries no code references;
	// UtilizationEntropyBits is the Shannon entropy of the codeword usage
	// distribution (Bits when perfectly uniform, 0 when one codeword holds
	// everything) and EntropyUtilization its ratio to Bits.
	DeadCodewords          int     `json:"dead_codewords"`
	UtilizationEntropyBits float64 `json:"utilization_entropy_bits"`
	EntropyUtilization     float64 `json:"entropy_utilization"`
	// MaxCodewordShare is the fraction of all codes mapped to the most
	// popular codeword (1/Entries when uniform).
	MaxCodewordShare float64 `json:"max_codeword_share"`
	// OccupancyHist is the log2 histogram of per-codeword usage counts:
	// bucket 0 = dead, bucket b = used in [2^(b-1), 2^b). Its entries sum
	// to Entries.
	OccupancyHist []int `json:"occupancy_hist"`
}

// TIBalanceReport describes how evenly the triangle-inequality clusters
// split the dataset — the skip structure's effectiveness depends on it.
type TIBalanceReport struct {
	Clusters int `json:"clusters"`
	// MinSize/MaxSize/MeanSize summarize member counts; EmptyClusters
	// counts clusters with no members (wasted centroids).
	MinSize       int     `json:"min_size"`
	MaxSize       int     `json:"max_size"`
	MeanSize      float64 `json:"mean_size"`
	EmptyClusters int     `json:"empty_clusters"`
	// Gini is the Gini coefficient of the size distribution (0 = perfectly
	// balanced, →1 = one cluster holds everything); ImbalanceRatio is
	// MaxSize over MeanSize.
	Gini           float64 `json:"gini"`
	ImbalanceRatio float64 `json:"imbalance_ratio"`
}

// DriftReport carries the online drift gauges into the report (filled by
// the index, not by Compute: the EWMA state lives with the index).
type DriftReport struct {
	// Ratio is the total EWMA incoming-vector MSE over the Build-time
	// baseline MSE (1 = no drift); AlertRatio the configured alert
	// threshold (0 = alerting disabled) and Alert whether Ratio currently
	// exceeds it.
	Ratio      float64 `json:"ratio"`
	AlertRatio float64 `json:"alert_ratio,omitempty"`
	Alert      bool    `json:"alert"`
	// SubspaceMSEEWMA is the per-subspace EWMA of incoming-vector MSE;
	// BaselineMSE the Build-time per-subspace MSE it is compared against.
	SubspaceMSEEWMA []float64 `json:"subspace_mse_ewma,omitempty"`
	BaselineMSE     []float64 `json:"baseline_mse,omitempty"`
}

// Report is the IndexReport: a point-in-time quality assessment of a built
// index. The JSON shape is documented in DESIGN.md §7.
type Report struct {
	// GeneratedAt stamps when the report was computed (set by the caller).
	GeneratedAt time.Time `json:"generated_at"`
	// N is the number of encoded vectors, Dim the raw dimensionality,
	// ProjectedDim the PCA-space dimensionality the subspaces partition.
	N            int `json:"n"`
	Dim          int `json:"dim"`
	ProjectedDim int `json:"projected_dim"`
	// Partial is true when no projected vectors (and no baseline) were
	// available: the distortion fields (Variance/MSE/MSEShare, the totals
	// below) are absent rather than silently zero. Utilization and balance
	// are always computed.
	Partial bool `json:"partial"`
	// MSESource says where the distortion fields came from: MSEFresh,
	// MSEBaseline, or empty when Partial.
	MSESource string `json:"mse_source,omitempty"`
	// TotalMSE is the mean squared reconstruction error per vector against
	// the exact projected vectors (the paper's Equation 2 currency);
	// TotalVariance the mean per-vector energy around the dataset mean, and
	// MSEShare their ratio — the overall fraction of signal lost.
	TotalMSE      float64 `json:"total_mse,omitempty"`
	TotalVariance float64 `json:"total_variance,omitempty"`
	MSEShare      float64 `json:"mse_share,omitempty"`
	// DeadCodewordsTotal sums DeadCodewords across subspaces.
	DeadCodewordsTotal int `json:"dead_codewords_total"`
	// Subspaces has one entry per subspace, importance order.
	Subspaces []SubspaceReport `json:"subspaces"`
	// TI describes the skip-cluster balance.
	TI TIBalanceReport `json:"ti"`
	// Drift is the online drift status (nil when the index has no Build
	// baseline to compare against, e.g. after loading from disk).
	Drift *DriftReport `json:"drift,omitempty"`
	// SLO is the online error-budget evaluation (nil when the index has no
	// configured objectives).
	SLO *metrics.SLOSnapshot `json:"slo,omitempty"`
}

// Compute builds a Report from a read-only view of the index state. It
// fills the distortion fields only when in.Projected is present (setting
// Partial otherwise) and leaves GeneratedAt, MSESource and Drift for the
// caller. Cost: one pass over the codes for utilization plus, with
// projected vectors, one O(n·dim) pass for the distortion accounting.
func Compute(in Input) *Report {
	m := in.Codebooks.Sub.M()
	rep := &Report{
		N:            in.N,
		Dim:          in.Dim,
		ProjectedDim: in.Codebooks.Sub.Dim(),
		Subspaces:    make([]SubspaceReport, m),
		Partial:      in.Projected == nil,
	}
	for s := 0; s < m; s++ {
		sr := &rep.Subspaces[s]
		sr.Index = s
		sr.Dims = in.Codebooks.Sub.Lengths[s]
		if s < len(in.Bits) {
			sr.Bits = in.Bits[s]
		}
		sr.Entries = 1 << sr.Bits
		if s < len(in.VarianceShares) {
			sr.VarianceShare = in.VarianceShares[s]
		}
	}
	computeUtilization(in, rep)
	if in.Projected != nil {
		computeDistortion(in, rep)
	}
	rep.TI = clusterBalance(in.ClusterSizes)
	return rep
}

// computeUtilization fills the codeword-usage fields: one pass over the
// codes, then per-subspace entropy, dead counts and the occupancy
// histogram.
func computeUtilization(in Input, rep *Report) {
	m := in.Codebooks.Sub.M()
	counts := make([][]int, m)
	for s := range counts {
		counts[s] = make([]int, rep.Subspaces[s].Entries)
	}
	for i := 0; i < in.Codes.N; i++ {
		row := in.Codes.Row(i)
		for s := 0; s < m; s++ {
			c := int(row[s])
			if c < len(counts[s]) {
				counts[s][c]++
			}
		}
	}
	for s := 0; s < m; s++ {
		sr := &rep.Subspaces[s]
		sr.OccupancyHist = make([]int, OccupancyBuckets)
		var entropy float64
		maxCount := 0
		n := float64(in.Codes.N)
		for _, c := range counts[s] {
			sr.OccupancyHist[occupancyBucket(c)]++
			if c == 0 {
				sr.DeadCodewords++
				continue
			}
			if c > maxCount {
				maxCount = c
			}
			p := float64(c) / n
			entropy -= p * math.Log2(p)
		}
		sr.UtilizationEntropyBits = entropy
		if sr.Bits > 0 {
			sr.EntropyUtilization = entropy / float64(sr.Bits)
		} else if sr.DeadCodewords == 0 {
			// A 0-bit (single-entry) dictionary that is used at all is, by
			// definition, fully utilized.
			sr.EntropyUtilization = 1
		}
		if n > 0 {
			sr.MaxCodewordShare = float64(maxCount) / n
		}
		rep.DeadCodewordsTotal += sr.DeadCodewords
	}
}

// occupancyBucket maps a usage count into the log2 occupancy histogram:
// bucket 0 = dead, bucket b = counts in [2^(b-1), 2^b), tail clamped.
func occupancyBucket(count int) int {
	if count <= 0 {
		return 0
	}
	b := 1
	for count > 1 && b < OccupancyBuckets-1 {
		count >>= 1
		b++
	}
	return b
}

// computeDistortion fills the MSE/variance fields from the exact projected
// vectors: per subspace, the mean squared quantization error and the
// empirical variance (so MSEShare is the fraction of that subspace's
// energy the dictionary loses).
func computeDistortion(in Input, rep *Report) {
	cb := in.Codebooks
	m := cb.Sub.M()
	dim := cb.Sub.Dim()
	n := in.Projected.Rows
	if n == 0 || in.Projected.Cols != dim {
		rep.Partial = true
		return
	}
	sqErr := make([]float64, m)
	sum := make([]float64, dim)
	sumSq := make([]float64, dim)
	for i := 0; i < n; i++ {
		z := in.Projected.Row(i)
		code := in.Codes.Row(i)
		for s := 0; s < m; s++ {
			zs := cb.Sub.Of(z, s)
			entry := int(code[s])
			if entry >= cb.Books[s].Rows {
				continue
			}
			sqErr[s] += float64(vec.SquaredL2(zs, cb.Books[s].Row(entry)))
		}
		for j, v := range z {
			f := float64(v)
			sum[j] += f
			sumSq[j] += f * f
		}
	}
	for s := 0; s < m; s++ {
		sr := &rep.Subspaces[s]
		sr.MSE = sqErr[s] / float64(n)
		var variance float64
		for j := cb.Sub.Offsets[s]; j < cb.Sub.Offsets[s]+cb.Sub.Lengths[s]; j++ {
			mean := sum[j] / float64(n)
			variance += sumSq[j]/float64(n) - mean*mean
		}
		if variance < 0 {
			variance = 0 // float cancellation on near-constant dims
		}
		sr.Variance = variance
		if variance > 0 {
			sr.MSEShare = sr.MSE / variance
		}
		rep.TotalMSE += sr.MSE
		rep.TotalVariance += sr.Variance
	}
	if rep.TotalVariance > 0 {
		rep.MSEShare = rep.TotalMSE / rep.TotalVariance
	}
}

// clusterBalance summarizes the TI cluster-size distribution.
func clusterBalance(sizes []int) TIBalanceReport {
	b := TIBalanceReport{Clusters: len(sizes)}
	if len(sizes) == 0 {
		return b
	}
	total := 0
	b.MinSize = sizes[0]
	for _, s := range sizes {
		total += s
		if s < b.MinSize {
			b.MinSize = s
		}
		if s > b.MaxSize {
			b.MaxSize = s
		}
		if s == 0 {
			b.EmptyClusters++
		}
	}
	b.MeanSize = float64(total) / float64(len(sizes))
	if b.MeanSize > 0 {
		b.ImbalanceRatio = float64(b.MaxSize) / b.MeanSize
	}
	b.Gini = gini(sizes, total)
	return b
}

// gini computes the Gini coefficient of the size distribution without
// mutating the input.
func gini(sizes []int, total int) float64 {
	if total == 0 || len(sizes) < 2 {
		return 0
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	n := len(sorted)
	var weighted float64
	for i, s := range sorted {
		weighted += float64(2*(i+1)-n-1) * float64(s)
	}
	return weighted / (float64(n) * float64(total))
}
