package core

import (
	"math"
	"math/bits"
	"time"

	"vaq/internal/kmeans"
	"vaq/internal/quantizer"
	"vaq/internal/trace"
	"vaq/internal/vec"
)

// AccuracyMode selects the arithmetic the blocked scan kernels run in.
type AccuracyMode int

const (
	// AccuracyExact (default) keeps the bit-identical float32 kernels:
	// both scan layouts return exactly the same ids, distances and prune
	// statistics (the PR 2 invariant).
	AccuracyExact AccuracyMode = iota
	// AccuracyFast scans a derived integer code store: dictionaries wider
	// than 256 entries are coarsened once at build time to 256-entry scan
	// dictionaries (k-means over the codewords, with a code remap), so
	// every subspace code fits one byte — and dictionaries that fit 16
	// entries pack their 4-bit codes two per byte, the Quick ADC / Bolt
	// recipe on top of the blocked layout. Per query the (much smaller)
	// scan tables quantize to uint8 with per-subspace power-of-two scales,
	// distance accumulation runs on widening uint32 accumulators per
	// 16-wide group, and early-abandon thresholds are quantized into the
	// integer domain. Candidates that enter the top-k under the integer
	// metric are re-ranked with exact float arithmetic from the canonical
	// codes, so reported distances match the exact kernels and only the
	// pruning decisions are approximate — a small, *measured* recall cost
	// (the online recall estimator and vaqreplay overlap gates quantify
	// it). Requires LayoutBlocked; applies to ModeTIEA and ModeHeap with
	// full subspace accumulation — ModeEA (an original-id-order contract)
	// and truncated Subspaces queries fall back to the exact kernels.
	AccuracyFast
)

func (a AccuracyMode) String() string {
	switch a {
	case AccuracyExact:
		return "exact"
	case AccuracyFast:
		return "fast"
	}
	return "unknown"
}

// packEntries is the largest dictionary a subspace may have for its codes
// to pack two per byte (4 bits each) in the fast store.
const packEntries = 16

// coarseEntries is the scan-dictionary size wide subspaces coarsen to:
// one byte per code, and a per-query table small enough to stay cache
// resident. 13-bit dictionaries would otherwise force uint16 code reads
// AND a per-query quantization pass over tens of thousands of entries —
// at SALD bench scale the five 13-bit subspaces alone hold 73% of the
// full LUT.
const coarseEntries = 256

// coarseIters bounds the Lloyd iterations of the one-time coarsening
// k-means. The codewords being clustered are themselves k-means output,
// so convergence is fast.
const coarseIters = 12

// Per-subspace storage class inside the fast store.
const (
	classPack4 = uint8(iota) // dictionary <= 16 entries: two 4-bit codes per byte
	classU8                  // everything else: one byte per code (wide dicts are coarsened)
)

// fastStore is the integer-kernel companion of blockedStore: the same
// cluster-contiguous, group-transposed geometry (identical perm/start, the
// physical order IS the TI member order), but with uniform 16-lane blocks
// (tail blocks are zero-padded so every block has the same byte layout),
// one byte per code everywhere — subspaces wider than 256 entries scan a
// coarsened 256-entry dictionary via a build-time code remap — and a
// packed class that stores 4-bit codes two per byte, so one byte load
// feeds two lanes. Like blockedStore it is a deterministic function of
// (codebooks, codes, TI clusters, seed): derived on Build/Read/Add, never
// serialized.
//
// Block b (global index; blockBase maps clusters to their first block)
// occupies:
//
//	dataP [b*strideP, (b+1)*strideP): nP groups of blockLanes/2 bytes —
//	       byte j of a group holds lane 2j in its low nibble, lane 2j+1
//	       in its high nibble
//	data8 [b*stride8, (b+1)*stride8): n8 groups of blockLanes bytes
//
// and the group of subspace s sits at ordinal ord[s] within its class.
type fastStore struct {
	cb        *quantizer.Codebooks
	m         int
	nP, n8    int           // subspace counts per class
	u8Prefix  int           // leading subspaces that are classU8 (the fused-chunk fast path)
	class     []uint8       // per subspace: classPack4 / classU8
	ord       []int         // per subspace: ordinal within its class
	offsets   []int         // len m+1: scan-table offsets (per-subspace entries <= 256)
	books     []*vec.Matrix // per subspace: the scan dictionary (coarse centroids, or cb.Books[s])
	remap     [][]uint8     // per subspace: canonical code -> scan code (nil = identity)
	perm      []int32
	start     []int32 // len clusters+1: cluster c's first physical position
	blockBase []int32 // len clusters+1: cluster c's first global block index
	strideP   int     // bytes per block in dataP (nP * blockLanes/2)
	stride8   int     // bytes per block in data8 (n8 * blockLanes)
	dataP     []uint8
	data8     []uint8
	// The exact codebooks flattened into one array for the re-rank pass:
	// subspace s's codeword c occupies rerFlat[rerBase[s]+c*len : ...+len].
	// One contiguous array instead of a Matrix pointer chase per subspace
	// per candidate; rerDim4 marks the (dominant) layout where every
	// subspace is 4-dimensional and query-contiguous, which the re-rank
	// inner loop specializes on.
	rerFlat []float32
	rerBase []int32
	rerDim4 bool
}

// coarsenBook trains the 256-entry scan dictionary for one wide subspace
// and the canonical-code remap onto it. The codewords are clustered
// unweighted — they already sit where the data is dense — and the remap
// assigns every codeword to its nearest coarse centroid, so the scan
// distance of a code is the distance to the centroid standing in for its
// codeword.
func coarsenBook(book *vec.Matrix, seed int64) (*vec.Matrix, []uint8) {
	res, err := kmeans.Train(book, kmeans.Config{
		K: coarseEntries, MaxIter: coarseIters, Seed: seed, Parallel: true,
	})
	centroids := (*vec.Matrix)(nil)
	if err == nil {
		centroids = res.Centroids
	} else {
		// Unreachable with K >= 1 and a non-empty book, but degrade to the
		// first coarseEntries codewords rather than fail the build.
		centroids = book.SliceRows(0, coarseEntries)
	}
	remap := make([]uint8, book.Rows)
	for i := 0; i < book.Rows; i++ {
		remap[i] = uint8(kmeans.AssignNearest(centroids, book.Row(i)))
	}
	return centroids, remap
}

// buildFastStore derives the integer scan store from the canonical codes
// and the TI cluster structure. Deterministic given its inputs. prev, when
// non-nil and built over the same codebooks, donates its coarse
// dictionaries and remaps — Add rebuilds the block data but never retrains
// the coarsening (the codebooks are immutable after Build).
func buildFastStore(cb *quantizer.Codebooks, codes *quantizer.Codes, ti *tiIndex, seed int64, prev *fastStore) *fastStore {
	m := codes.M
	fs := &fastStore{
		cb:      cb,
		m:       m,
		class:   make([]uint8, m),
		ord:     make([]int, m),
		offsets: make([]int, m+1),
		books:   make([]*vec.Matrix, m),
		remap:   make([][]uint8, m),
	}
	reuse := prev != nil && prev.cb == cb && prev.m == m
	total := 0
	for s := 0; s < m; s++ {
		book := cb.Books[s]
		if book.Rows > coarseEntries {
			if reuse && prev.remap[s] != nil {
				fs.books[s], fs.remap[s] = prev.books[s], prev.remap[s]
			} else {
				// Decorrelate per-subspace k-means streams with a fixed odd
				// stride so every subspace trains deterministically.
				fs.books[s], fs.remap[s] = coarsenBook(book, seed+int64(s)*7919+1)
			}
		} else {
			fs.books[s] = book
		}
		entries := fs.books[s].Rows
		fs.offsets[s] = total
		total += entries
		if entries <= packEntries {
			fs.class[s] = classPack4
			fs.ord[s] = fs.nP
			fs.nP++
		} else {
			fs.class[s] = classU8
			fs.ord[s] = fs.n8
			fs.n8++
		}
	}
	fs.offsets[m] = total
	for s := 0; s < m && fs.class[s] == classU8; s++ {
		fs.u8Prefix++
	}
	if reuse {
		fs.rerFlat, fs.rerBase, fs.rerDim4 = prev.rerFlat, prev.rerBase, prev.rerDim4
	} else {
		flat := 0
		fs.rerBase = make([]int32, m)
		fs.rerDim4 = true
		for s := 0; s < m; s++ {
			fs.rerBase[s] = int32(flat)
			flat += len(cb.Books[s].Data)
			if cb.Sub.Lengths[s] != 4 || cb.Sub.Offsets[s] != 4*s {
				fs.rerDim4 = false
			}
		}
		fs.rerFlat = make([]float32, flat)
		for s := 0; s < m; s++ {
			copy(fs.rerFlat[fs.rerBase[s]:], cb.Books[s].Data)
		}
	}
	fs.strideP = fs.nP * (blockLanes / 2)
	fs.stride8 = fs.n8 * blockLanes
	n := codes.N
	clusters := ti.clusters
	fs.perm = make([]int32, n)
	fs.start = make([]int32, len(clusters)+1)
	fs.blockBase = make([]int32, len(clusters)+1)
	blocks := 0
	pos := 0
	for c, members := range clusters {
		fs.start[c] = int32(pos)
		fs.blockBase[c] = int32(blocks)
		blocks += (len(members) + blockLanes - 1) / blockLanes
		pos += len(members)
	}
	fs.start[len(clusters)] = int32(pos)
	fs.blockBase[len(clusters)] = int32(blocks)
	fs.dataP = make([]uint8, blocks*fs.strideP)
	fs.data8 = make([]uint8, blocks*fs.stride8)
	for c, members := range clusters {
		cStart := int(fs.start[c])
		base := int(fs.blockBase[c])
		for b := 0; b < len(members); b += blockLanes {
			cnt := len(members) - b
			if cnt > blockLanes {
				cnt = blockLanes
			}
			blk := base + b/blockLanes
			offP, off8 := blk*fs.strideP, blk*fs.stride8
			for lane := 0; lane < cnt; lane++ {
				id := members[b+lane].id
				fs.perm[cStart+b+lane] = int32(id)
				row := codes.Row(id)
				for s := 0; s < m; s++ {
					code := uint8(row[s])
					if rm := fs.remap[s]; rm != nil {
						code = rm[row[s]]
					}
					if fs.class[s] == classPack4 {
						p := offP + fs.ord[s]*(blockLanes/2) + lane>>1
						fs.dataP[p] |= code << ((lane & 1) * 4)
					} else {
						fs.data8[off8+fs.ord[s]*blockLanes+lane] = code
					}
				}
			}
		}
	}
	return fs
}

// packedSubspaces reports how many subspaces store 4-bit packed codes.
func (fs *fastStore) packedSubspaces() int { return fs.nP }

// coarsenedSubspaces reports how many subspaces scan a coarsened
// dictionary instead of their full codebook.
func (fs *fastStore) coarsenedSubspaces() int {
	n := 0
	for _, rm := range fs.remap {
		if rm != nil {
			n++
		}
	}
	return n
}

// fillFloatLUT computes the per-query float distance tables over the scan
// dictionaries (coarse centroids where coarsened). At bench scale this is
// ~an order of magnitude smaller than the full LUT, so the fast path
// skips the full fill entirely.
func (fs *fastStore) fillFloatLUT(qz []float32, buf []float32) []float32 {
	total := fs.offsets[fs.m]
	if cap(buf) < total {
		buf = make([]float32, total)
	}
	buf = buf[:total]
	for s := 0; s < fs.m; s++ {
		quantizer.FillTable(fs.cb.Sub.Of(qz, s), fs.books[s], buf[fs.offsets[s]:fs.offsets[s+1]])
	}
	return buf
}

// rMaxShift caps the per-subspace power-of-two scale spread. With it, any
// integer partial distance is bounded by m * 255 * 2^rMaxShift, so uint32
// accumulators cannot overflow for any real subspace count, and thresholds
// past maxIntAccum can simply disable abandoning. The cap sacrifices only
// subspaces whose range sits more than rMaxShift octaves below the widest
// one; tightening it further (to fit tables in uint16, say) measurably
// hurts — on variance-ordered VAQ subspaces the crushed mid-tail tables
// stop contributing to partial sums, and deep early-abandons dry up.
const rMaxShift = 12

// lutStride is the table stride of the integer LUT: every subspace's scan
// dictionary holds at most 256 entries (coarsening guarantees it), so the
// tables live at uniform 256-entry offsets. Uniform stride turns the
// per-lookup offset into a shift, and a uint8 code indexing a 256-entry
// slice needs no bounds check — the two together are what make the scalar
// integer kernel competitive.
const lutStride = coarseEntries

// intLUT is the integer quantization of one query's scan tables, with
// per-subspace power-of-two scales (block floating point): subspace s
// quantizes q = round((v - min_s) * 255 / 2^E'_s) and stores the
// PRE-SHIFTED accumulation term q << r_s as uint32, where r_s =
// E'_s - Eref >= 0 and 2^E'_s bounds the subspace's table range. Every
// table keeps ~8 significant bits regardless of how skewed the
// per-subspace ranges are — the failure mode of a single shared scale on
// variance-ordered VAQ subspaces, where the leading tables would saturate
// exactly where early abandoning does its work.
//
// An integer accumulation over subspaces estimates (d - delta) * scale
// with delta = Σ_s min_s and scale = 255 / 2^Eref, so float distances are
// recovered as d ≈ delta + acc * inv (inv = 1/scale) and a float
// threshold t maps into the accumulator domain as (t - delta) * scale.
// scale == 0 flags a degenerate query (all tables constant or non-finite):
// every code quantizes to distance delta and integer abandoning is
// disabled.
type intLUT struct {
	dist  []uint32 // m * lutStride pre-shifted terms; subspace s at [s*lutStride, ...)
	shift []uint8  // per-subspace accumulation shift r_s
	mins  []float32
	exps  []int // quantize scratch: per-subspace range exponent E_s
	delta float32
	scale float32
	inv   float32
	slack uint32 // rounding headroom for thresholds: Σ_s 2^r_s / 2, plus 1
}

// maxIntAccum bounds any abandonable integer partial distance: m * 255 *
// 2^rMaxShift stays below it for every real subspace count (m <= 64), so
// float thresholds at or above it can never abandon anything and are
// clamped there before the float->uint32 conversion (whose out-of-range
// behavior Go leaves implementation-specific).
const maxIntAccum = 1 << 26

// intNoAbandon is the "abandon nothing" threshold sentinel. It must exceed
// every reachable accumulation (bounded by maxIntAccum plus slack) but stay
// BELOW 1<<31: the scan shell's first-boundary triage reads the sign bit of
// the wrapped difference tInt-acc as the abandon flag, which is only valid
// while both operands fit in 31 bits. MaxUint32 would flip that bit for
// every lane and silently abandon the whole scan.
const intNoAbandon = uint32(1)<<31 - 1

// quantize fills il from the float scan tables over all m subspaces. Every
// table must hold at most lutStride entries (the fast store guarantees
// it).
func (il *intLUT) quantize(dist []float32, offsets []int, m int) {
	if cap(il.dist) < m*lutStride {
		il.dist = make([]uint32, m*lutStride)
	}
	il.dist = il.dist[:m*lutStride]
	if cap(il.mins) < m {
		il.mins = make([]float32, m)
		il.shift = make([]uint8, m)
		il.exps = make([]int, m)
	}
	il.mins = il.mins[:m]
	il.shift = il.shift[:m]
	exps := il.exps[:m]
	// Pass 1: per-subspace range, and the exponent E_s with span <= 2^E_s.
	const degenerate = math.MinInt32
	var delta float32
	eMin, eMax := math.MaxInt32, degenerate
	for s := 0; s < m; s++ {
		table := dist[offsets[s]:offsets[s+1]]
		lo, hi := table[0], table[0]
		for _, v := range table[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		il.mins[s] = lo
		delta += lo
		span := float64(hi - lo)
		if span > 0 && !math.IsInf(span, 1) {
			_, e := math.Frexp(span) // span = f * 2^e, f in [0.5, 1)
			exps[s] = e
			if e < eMin {
				eMin = e
			}
			if e > eMax {
				eMax = e
			}
		} else {
			exps[s] = degenerate
		}
	}
	il.delta = delta
	if eMax == degenerate || math.IsNaN(float64(delta)) || math.IsInf(float64(delta), 0) {
		// Degenerate query: everything quantizes to 0, distances collapse
		// to delta, and thresholdInt disables integer abandoning.
		il.scale = 0
		il.inv = 0
		il.slack = 0
		clear(il.dist)
		clear(il.shift)
		return
	}
	// Reference exponent: give every subspace full resolution when the
	// exponent spread allows (Eref = eMin), otherwise sacrifice the
	// smallest-range tables (coarser absolute quanta, never saturation of
	// the big ones — those are scanned first and carry the variance).
	eRef := eMin
	if eMax-rMaxShift > eRef {
		eRef = eMax - rMaxShift
	}
	il.scale = float32(math.Ldexp(255, -eRef))
	il.inv = float32(math.Ldexp(1, eRef) / 255)
	var slackSum uint32
	for s := 0; s < m; s++ {
		lo := il.mins[s]
		src := dist[offsets[s]:offsets[s+1]]
		out := il.dist[s*lutStride : s*lutStride+len(src)]
		if exps[s] == degenerate {
			il.shift[s] = 0
			clear(out)
			continue
		}
		e := exps[s]
		if e < eRef {
			e = eRef
		}
		r := uint8(e - eRef)
		il.shift[s] = r
		slackSum += 1 << r
		qscale := float32(math.Ldexp(255, -e))
		for i, v := range src {
			q := (v - lo) * qscale
			switch {
			case q != q: // NaN table entry: treat as "far"
				out[i] = 255 << r
			case q <= 0:
				out[i] = 0
			case q >= 255:
				out[i] = 255 << r // by construction only reachable via rounding
			default:
				out[i] = uint32(q+0.5) << r
			}
		}
	}
	// Each lookup rounds by at most 1/2 of its 2^r_s quantum; a full
	// accumulation is off by at most half the shift sum (+1 for the
	// threshold's own rounding).
	il.slack = slackSum/2 + 1
}

// thresholdInt maps a float best-so-far distance into the integer
// accumulator domain, plus the per-query rounding headroom so quantization
// error alone cannot abandon a code the float kernel would have kept.
func (il *intLUT) thresholdInt(bsf float32) uint32 {
	if il.scale == 0 {
		return intNoAbandon
	}
	t := (bsf - il.delta) * il.scale
	if !(t > 0) { // non-positive or NaN: only the slack remains
		return il.slack
	}
	if t >= maxIntAccum {
		return intNoAbandon
	}
	return uint32(t) + il.slack
}

// dequantize recovers an approximate float distance from an integer
// accumulation over all subspaces.
func (il *intLUT) dequantize(acc uint32) float32 {
	return il.delta + float32(acc)*il.inv
}

// accumChunkFast computes integer partial distances over subspaces
// [0, chunk) for every lane of one block, streaming the block's groups
// subspace-major exactly like accumChunk — but over the pre-shifted
// uint32 tables, so each lookup is one byte load, one table load and one
// add. The common case — chunk 4 over a uint8-class prefix, i.e. the
// first EA boundary of the default cadence — fuses the four groups (64
// contiguous bytes) into one pass per lane with no intermediate
// accumulator traffic. The returned mask has bit j set when lane j's
// partial exceeds tInt — the first-boundary triage folded into the same
// pass while the partial is still in a register (both operands stay below
// 1<<31, so the sign bit of the wrapped difference is the abandon flag;
// tInt intNoAbandon yields an empty mask). Padding lanes of a tail block
// accumulate garbage-free zeros (the pad nibbles/bytes are 0) and are
// never pushed by the callers — their mask bits are masked off by the
// caller's lane count.
func (fs *fastStore) accumChunkFast(dist []uint32, blk, chunk int, acc *[blockLanes]uint32, tInt uint32) uint32 {
	off8 := blk * fs.stride8
	var abm uint32
	if chunk == 4 && fs.u8Prefix >= 4 {
		g := fs.data8[off8 : off8+4*blockLanes : off8+4*blockLanes]
		t0 := dist[0*lutStride : 1*lutStride : 1*lutStride]
		t1 := dist[1*lutStride : 2*lutStride : 2*lutStride]
		t2 := dist[2*lutStride : 3*lutStride : 3*lutStride]
		t3 := dist[3*lutStride : 4*lutStride : 4*lutStride]
		for j := 0; j < blockLanes; j++ {
			a := t0[g[j]] + t1[g[blockLanes+j]] + t2[g[2*blockLanes+j]] + t3[g[3*blockLanes+j]]
			acc[j] = a
			abm |= (tInt - a) >> 31 << j
		}
		return abm
	}
	for j := range acc {
		acc[j] = 0
	}
	offP := blk * fs.strideP
	for s := 0; s < chunk; s++ {
		t := dist[s*lutStride : s*lutStride+lutStride : s*lutStride+lutStride]
		if fs.class[s] == classPack4 {
			o := offP + fs.ord[s]*(blockLanes/2)
			g := fs.dataP[o : o+blockLanes/2 : o+blockLanes/2]
			for j, b := range g {
				a0 := t[b&15]
				a1 := t[b>>4]
				acc[2*j] += a0
				acc[2*j+1] += a1
			}
		} else {
			o := off8 + fs.ord[s]*blockLanes
			g := fs.data8[o : o+blockLanes : o+blockLanes]
			for j := 0; j < blockLanes; j += 4 {
				a0 := t[g[j]]
				a1 := t[g[j+1]]
				a2 := t[g[j+2]]
				a3 := t[g[j+3]]
				acc[j] += a0
				acc[j+1] += a1
				acc[j+2] += a2
				acc[j+3] += a3
			}
		}
	}
	for j := 0; j < blockLanes; j++ {
		abm |= (tInt - acc[j]) >> 31 << j
	}
	return abm
}

// codeAt reads one lane's scan code for subspace s of block blk.
func (fs *fastStore) codeAt(blk, lane, s int) int {
	if fs.class[s] == classPack4 {
		b := fs.dataP[blk*fs.strideP+fs.ord[s]*(blockLanes/2)+lane>>1]
		return int((b >> ((lane & 1) * 4)) & 15)
	}
	return int(fs.data8[blk*fs.stride8+fs.ord[s]*blockLanes+lane])
}

// eaResumeLaneFast continues one lane of a block from subspace sI with
// integer partial acc already accumulated, keeping the early-abandon
// cadence of the float kernels but testing against the quantized
// threshold tInt (intNoAbandon while the heap is not yet full, which makes
// every boundary test a no-op). Returns the integer distance, the
// absolute subspace index reached (the lookup count, covering the
// precomputed prefix) and whether the lane was abandoned.
func (fs *fastStore) eaResumeLaneFast(dist []uint32, acc uint32, sI, blk, lane, useSub, check int, tInt uint32) (uint32, int, bool) {
	// Leading uint8-class subspaces (at variance-ordered bench configs
	// that is nearly all of them, and the ones resumes actually reach
	// before abandoning): ord[s] == s there, so the code address and the
	// table offset both advance by constant strides — no class branch, no
	// ordinal load, no multiply per lookup.
	u8End := fs.u8Prefix
	if u8End > useSub {
		u8End = useSub
	}
	p := blk*fs.stride8 + sI*blockLanes + lane
	tOff := sI * lutStride
	for sI+check <= u8End {
		end := sI + check
		for ; sI < end; sI++ {
			acc += dist[tOff+int(fs.data8[p])]
			p += blockLanes
			tOff += lutStride
		}
		if acc > tInt {
			return acc, sI, true
		}
	}
	// Whatever remains — the packed-4-bit tail, plus any interleaved
	// layout's leftovers — goes through the generic per-class reads. The
	// chunk cadence carries over: sI is still a multiple of check here.
	baseP := blk*fs.strideP + lane>>1
	nibble := uint8(lane&1) * 4
	base8 := blk*fs.stride8 + lane
	for sI+check <= useSub {
		end := sI + check
		for ; sI < end; sI++ {
			var code uint32
			if fs.class[sI] == classU8 {
				code = uint32(fs.data8[base8+fs.ord[sI]*blockLanes])
			} else {
				code = uint32((fs.dataP[baseP+fs.ord[sI]*(blockLanes/2)] >> nibble) & 15)
			}
			acc += dist[sI*lutStride+int(code)]
		}
		if acc > tInt {
			return acc, sI, true
		}
	}
	for ; sI < useSub; sI++ {
		var code uint32
		if fs.class[sI] == classU8 {
			code = uint32(fs.data8[base8+fs.ord[sI]*blockLanes])
		} else {
			code = uint32((fs.dataP[baseP+fs.ord[sI]*(blockLanes/2)] >> nibble) & 15)
		}
		acc += dist[sI*lutStride+int(code)]
	}
	return acc, useSub, false
}

// scanHeapFast is the exhaustive integer scan: every block streams
// sequentially through accumChunkFast over all subspaces, and the
// dequantized per-lane totals feed the float top-k heap, whose final
// contents the exact re-rank pass (rerankFast) rescores.
func (s *Searcher) scanHeapFast() {
	fs := s.ix.fast
	il := &s.ilut
	dist := il.dist
	useSub := fs.m
	var acc [blockLanes]uint32
	for c := 0; c+1 < len(fs.start); c++ {
		cEnd := int(fs.start[c+1])
		blk := int(fs.blockBase[c])
		for q := int(fs.start[c]); q < cEnd; q, blk = q+blockLanes, blk+1 {
			cnt := cEnd - q
			if cnt > blockLanes {
				cnt = blockLanes
			}
			fs.accumChunkFast(dist, blk, useSub, &acc, intNoAbandon)
			for j := 0; j < cnt; j++ {
				dd := il.dequantize(acc[j])
				if s.topk.Push(int(fs.perm[q+j]), dd) {
					s.pushed = append(s.pushed, pushCand{id: fs.perm[q+j], d: dd})
				}
			}
		}
	}
	s.stats.CodesConsidered = s.ix.codes.N
	s.stats.Lookups = s.ix.codes.N * useSub
}

// scanTIEAFast is the TI+EA cascade in the integer domain, with the
// triangle bound hoisted from a per-member test to a per-cluster range
// query: cluster ranking and the visit fraction are unchanged (and stay
// in float), and because a cluster's members are stored sorted by their
// distance to its centroid, the members the triangle bound can prune —
// those with |dq - e.dist| >= bsf — form a prefix and a suffix of the
// cluster. Two binary searches on entry delimit the surviving range, and
// only the blocks covering it stream through accumChunkFast, where every
// lane faces the quantized early-abandon threshold at the first chunk
// boundary. The bound is evaluated against the heap state at cluster
// entry rather than per member (it only tightens mid-cluster, so the
// range is at worst slightly wider than the exact kernel's); lanes
// sharing a block with survivors are evaluated rather than skipped,
// since the transposed chunk pass computes all 16 lanes in one sweep
// anyway. CodesSkippedTI counts the members outside the scanned blocks.
// The heap evolves only on accepted pushes, so the integer threshold is
// refreshed at push time; the heap's final contents go to the exact
// re-rank pass.
func (s *Searcher) scanTIEAFast(qz []float32, visitFrac float64) {
	ix := s.ix
	ti := ix.ti
	fs := ix.fast
	il := &s.ilut
	dist := il.dist
	useSub := fs.m
	check := ix.cfg.EACheckEvery
	rec := s.rec
	rankStart := rec.Clock()
	visit := s.orderClusters(qz, visitFrac)
	if rec.Active() {
		rec.Add(trace.Span{Name: trace.SpanClusterRank, Start: rankStart, Dur: rec.Clock() - rankStart, Count: visit})
	}
	s.stats.ClustersVisited = visit
	var resumeStart, resumeDur time.Duration
	resumeCnt := 0
	chunk := check
	if chunk > useSub {
		chunk = useSub
	}
	var acc [blockLanes]uint32
	// Heap state, refreshed only on accepted pushes (the only writes).
	// Pruning (not Full) so an injected cross-shard bound arms the
	// integer threshold and the TI range query from the first block.
	full := s.topk.Pruning()
	tInt := intNoAbandon
	if full {
		tInt = il.thresholdInt(s.topk.Threshold())
	}
	depths := s.stats.AbandonDepths
	perm := fs.perm
	for v := 0; v < visit; v++ {
		c := s.clustIdx[v]
		rk := clampRank(v, len(s.stats.TISkipsByRank))
		var spanStart time.Duration
		var before SearchStats
		if rec.Active() {
			spanStart = rec.Clock()
			before = s.stats
		}
		members := ti.clusters[c]
		nMem := len(members)
		// Triangle bound as a range query: members with
		// |dq - e.dist| >= bsf cannot beat the heap, and since members are
		// sorted ascending by e.dist those prunable members are exactly a
		// prefix (e.dist <= dq-bsf) and a suffix (e.dist >= dq+bsf). Two
		// binary searches delimit the survivors; the scan then covers only
		// the blocks that contain them.
		memLo, memHi := 0, nMem
		if full {
			dq := float32(math.Sqrt(float64(s.clustD[c])))
			bsf := float32(math.Sqrt(float64(s.topk.Threshold())))
			cutLo, cutHi := dq-bsf, dq+bsf
			for l, r := 0, nMem; l < r; {
				mid := int(uint(l+r) >> 1)
				if members[mid].dist <= cutLo {
					l = mid + 1
				} else {
					r = mid
				}
				memLo = l
			}
			for l, r := memLo, nMem; l < r; {
				mid := int(uint(l+r) >> 1)
				if members[mid].dist < cutHi {
					l = mid + 1
				} else {
					r = mid
				}
				memHi = l
			}
		}
		// Round the range out to block boundaries: a lane sharing a block
		// with a survivor is evaluated too (the chunk pass computes all 16
		// lanes in one sweep, so skipping it would cost more than scoring
		// it).
		scanLo := memLo &^ (blockLanes - 1)
		scanHi := (memHi + blockLanes - 1) &^ (blockLanes - 1)
		if scanHi > nMem {
			scanHi = nMem
		}
		if memLo >= memHi {
			scanLo, scanHi = 0, 0
		}
		s.stats.CodesConsidered += scanHi - scanLo
		if skipped := nMem - (scanHi - scanLo); skipped > 0 {
			s.stats.CodesSkippedTI += skipped
			if s.stats.TISkipsByRank != nil {
				s.stats.TISkipsByRank[rk] += uint32(skipped)
			}
		}
		if scanLo == scanHi {
			if rec.Active() {
				rec.Add(clusterScanSpan(spanStart, rec.Clock(), c, v, nMem, &before, &s.stats))
			}
			continue
		}
		cStart := int(fs.start[c])
		cEnd := cStart + scanHi
		blk := int(fs.blockBase[c]) + scanLo/blockLanes
		// Pruning counters stay in locals across the cluster walk — one
		// register add per event instead of a read-modify-write into the
		// stats struct — and flush once per cluster, before the cluster
		// span snapshots the stats.
		var nLookups, nAbandoned int
		for q := cStart + scanLo; q < cEnd; q, blk = q+blockLanes, blk+1 {
			cnt := cEnd - q
			if cnt > blockLanes {
				cnt = blockLanes
			}
			// First-boundary triage rides inside the accumulation pass,
			// branch-free: most lanes (~85% at the default config)
			// abandon right at this boundary, and a conditional branch at
			// that bias still mispredicts often enough to dominate the
			// per-lane cost — so accumChunkFast folds each lane's
			// threshold test into a sign-bit mask while the partial is
			// still in a register, and only the survivor bits are walked
			// below. Threshold pushes inside the survivor walk tighten
			// tInt for the NEXT block's triage (and for the resume calls
			// below), not for survivors already in the mask — each of
			// those re-faces the tightened threshold at its next chunk
			// boundary anyway.
			mask := ^fs.accumChunkFast(dist, blk, chunk, &acc, tInt) & (1<<cnt - 1)
			nLookups += cnt * chunk
			nAb := cnt - bits.OnesCount32(mask)
			nAbandoned += nAb
			if depths != nil {
				depths[chunk] += uint32(nAb)
			}
			for ; mask != 0; mask &= mask - 1 {
				j := bits.TrailingZeros32(mask)
				d := acc[j]
				var t0 time.Duration
				if rec.Active() {
					t0 = rec.Clock()
				}
				d, lookups, abandoned := fs.eaResumeLaneFast(dist, d, chunk, blk, j, useSub, check, tInt)
				if rec.Active() {
					if resumeCnt == 0 {
						resumeStart = t0
					}
					resumeDur += rec.Clock() - t0
					resumeCnt++
				}
				nLookups += lookups - chunk
				if abandoned {
					nAbandoned++
					if depths != nil {
						depths[lookups]++
					}
				} else {
					dd := il.dequantize(d)
					if s.topk.Push(int(perm[q+j]), dd) {
						s.pushed = append(s.pushed, pushCand{id: perm[q+j], d: dd})
						if s.topk.Pruning() {
							full = true
							tInt = il.thresholdInt(s.topk.Threshold())
						}
					}
				}
			}
		}
		s.stats.CodesAbandonedEA += nAbandoned
		s.stats.Lookups += nLookups
		if rec.Active() {
			rec.Add(clusterScanSpan(spanStart, rec.Clock(), c, v, nMem, &before, &s.stats))
		}
	}
	if resumeCnt > 0 {
		rec.Add(trace.Span{Name: trace.SpanEAResume, Start: resumeStart, Dur: resumeDur, Count: resumeCnt})
	}
}

// pushCand is one accepted integer-scan push: the candidate id and the
// dequantized distance it entered the heap with, kept so rerankFast can
// prune candidates the quantization error bound already excludes.
type pushCand struct {
	id int32
	d  float32
}

// rerankFast rebuilds the top-k heap with exact float distances for the
// candidates the integer scan retained. The per-subspace arithmetic
// matches FillTable (SquaredL2 association — the 4-dimensional case is
// inlined with fillLUT4's exact operation order) and the subspace-order
// summation of the scan kernels, so the reported candidates carry
// bit-identical distances to the exact kernels — only the candidate SET
// is decided by the integer metric, and within it the exact distances
// decide the final order.
//
// Most pushes are stale: they entered while the heap was filling or
// before the threshold tightened, and sit far above the final bar. When
// no subspace is coarsened the float scan tables equal the re-rank
// terms, so |dequantized - exact| <= slack*inv for every candidate; with
// T the final heap threshold (a dequantized value), the exact top-k
// cutoff is at most T + slack*inv, and any push whose stored distance
// exceeds T + 2*slack*inv is provably outside it. The filter uses twice
// that margin — strictly looser, so a dropped candidate is strictly
// worse than the cutoff and even exact-distance ties at the boundary
// keep their id-ordered winners. Coarsened stores (scan dictionary !=
// re-rank codebook, bound doesn't hold) and degenerate quantizations
// (inv == 0) re-rank everything, as does a non-full heap (threshold
// +Inf-like keeps every candidate). NaN estimates never satisfy the
// drop comparison and are rescored.
func (s *Searcher) rerankFast(qz []float32) {
	ix := s.ix
	fs := ix.fast
	codes := ix.codes
	m := fs.m
	flat := fs.rerFlat
	base := fs.rerBase
	il := &s.ilut
	cut := float32(math.MaxFloat32)
	if il.inv > 0 && fs.coarsenedSubspaces() == 0 {
		cut = s.topk.Threshold() + 4*float32(il.slack)*il.inv
	}
	s.topk.Reset()
	if fs.rerDim4 {
		// Uniform 4-dimensional subspaces (the paper's bench geometry):
		// one flat array walk per candidate, fillLUT4's operation order.
		// Two subspaces per step: the pair shares one query-slice load and
		// halves the per-subspace slice/bounds bookkeeping, while the two
		// 4-term reductions are mutually independent and overlap in
		// flight. The running sum still folds them in strict subspace
		// order (d += a; d += b) — bit-identical distances to the exact
		// kernels are a tested invariant, and left-to-right summation is
		// part of it.
		for _, pc := range s.pushed {
			if pc.d > cut {
				continue
			}
			id := int(pc.id)
			row := codes.Data[id*m : id*m+m]
			var d float32
			sI := 0
			for ; sI+2 <= m; sI += 2 {
				pa := int(base[sI]) + int(row[sI])*4
				pb := int(base[sI+1]) + int(row[sI+1])*4
				ra := flat[pa : pa+4 : pa+4]
				rb := flat[pb : pb+4 : pb+4]
				q := qz[sI*4 : sI*4+8 : sI*4+8]
				a0 := q[0] - ra[0]
				a1 := q[1] - ra[1]
				a2 := q[2] - ra[2]
				a3 := q[3] - ra[3]
				b0 := q[4] - rb[0]
				b1 := q[5] - rb[1]
				b2 := q[6] - rb[2]
				b3 := q[7] - rb[3]
				d += a0*a0 + a1*a1 + a2*a2 + a3*a3
				d += b0*b0 + b1*b1 + b2*b2 + b3*b3
			}
			if sI < m {
				p := int(base[sI]) + int(row[sI])*4
				r := flat[p : p+4 : p+4]
				q := qz[sI*4 : sI*4+4 : sI*4+4]
				t0 := q[0] - r[0]
				t1 := q[1] - r[1]
				t2 := q[2] - r[2]
				t3 := q[3] - r[3]
				d += t0*t0 + t1*t1 + t2*t2 + t3*t3
			}
			s.topk.Push(id, d)
		}
		return
	}
	sub := ix.cb.Sub
	for _, pc := range s.pushed {
		if pc.d > cut {
			continue
		}
		id := int(pc.id)
		row := codes.Data[id*m : id*m+m]
		var d float32
		for sI, c := range row {
			off, ln := sub.Offsets[sI], sub.Lengths[sI]
			p := int(base[sI]) + int(c)*ln
			d += vec.SquaredL2(qz[off:off+ln], flat[p:p+ln])
		}
		s.topk.Push(id, d)
	}
}
