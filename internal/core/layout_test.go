package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"vaq/internal/vec"
)

// buildBothLayouts builds the same index twice, once per layout, with an
// otherwise identical config.
func buildBothLayouts(t *testing.T, x *vec.Matrix, cfg Config) (blocked, rowmajor *Index) {
	t.Helper()
	cfg.ScanLayout = LayoutBlocked
	blocked, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ScanLayout = LayoutRowMajor
	rowmajor, err = Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return blocked, rowmajor
}

// compareLayouts runs the same queries through both indexes and demands
// byte-identical neighbors AND identical pruning stats: the blocked layout
// is a physical reorganization, not an algorithmic change, so every
// observable — ids, distances, skip/abandon counters — must match exactly.
func compareLayouts(t *testing.T, blocked, rowmajor *Index, queries *vec.Matrix, k int, opt SearchOptions) {
	t.Helper()
	sb := blocked.NewSearcher()
	sr := rowmajor.NewSearcher()
	for qi := 0; qi < queries.Rows; qi++ {
		q := queries.Row(qi)
		rb, err := sb.Search(q, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := sr.Search(q, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rb, rr) {
			t.Fatalf("query %d opt %+v: results differ\nblocked:  %v\nrowmajor: %v", qi, opt, rb, rr)
		}
		if !reflect.DeepEqual(sb.LastStats(), sr.LastStats()) {
			t.Fatalf("query %d opt %+v: stats differ\nblocked:  %+v\nrowmajor: %+v",
				qi, opt, sb.LastStats(), sr.LastStats())
		}
	}
}

func layoutQuerySet(rng *rand.Rand, x *vec.Matrix, count int) *vec.Matrix {
	qs := vec.NewMatrix(count, x.Cols)
	for i := 0; i < count; i++ {
		row := qs.Row(i)
		copy(row, x.Row(rng.Intn(x.Rows)))
		for j := range row {
			row[j] += float32(rng.NormFloat64() * 0.05)
		}
	}
	return qs
}

// The acceptance bar of the layout change: for every search mode and a
// range of cluster-visit fractions, the blocked layout answers exactly like
// the legacy row-major scan.
func TestScanLayoutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	x := skewedData(rng, 2500, 32, 1.2)
	blocked, rowmajor := buildBothLayouts(t, x, Config{
		NumSubspaces: 8, Budget: 56, Seed: 311, TIClusters: 40,
	})
	if blocked.blocked == nil {
		t.Fatal("blocked layout index did not build its blocked store")
	}
	if rowmajor.blocked != nil {
		t.Fatal("rowmajor layout index built a blocked store")
	}
	qs := layoutQuerySet(rng, x, 12)
	opts := []SearchOptions{
		{Mode: ModeHeap},
		{Mode: ModeEA},
		{Mode: ModeTIEA, VisitFrac: 0.25},
		{Mode: ModeTIEA, VisitFrac: 0.5},
		{Mode: ModeTIEA, VisitFrac: 1.0},
	}
	for _, opt := range opts {
		compareLayouts(t, blocked, rowmajor, qs, 10, opt)
	}
	// Truncated accumulation (dimensionality-reduction mode) exercises the
	// useSub < m paths of the blocked kernels.
	compareLayouts(t, blocked, rowmajor, qs, 10, SearchOptions{Mode: ModeTIEA, VisitFrac: 0.5, Subspaces: 5})
	compareLayouts(t, blocked, rowmajor, qs, 10, SearchOptions{Mode: ModeHeap, Subspaces: 3})
}

// Wide dictionaries (more than 8 bits per subspace) must take the uint16
// group path. MinBits=9 forces every dictionary past 256 entries.
func TestScanLayoutEquivalenceWideCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	x := skewedData(rng, 1600, 16, 1.0)
	blocked, rowmajor := buildBothLayouts(t, x, Config{
		NumSubspaces: 4, Budget: 38, MinBits: 9, MaxBits: 10,
		Seed: 313, TIClusters: 20, KMeansIters: 8,
	})
	bs := blocked.blocked
	if bs.mW == 0 {
		t.Fatal("expected at least one wide (uint16) subspace under MinBits=9")
	}
	qs := layoutQuerySet(rng, x, 8)
	for _, opt := range []SearchOptions{
		{Mode: ModeHeap},
		{Mode: ModeEA},
		{Mode: ModeTIEA, VisitFrac: 0.5},
	} {
		compareLayouts(t, blocked, rowmajor, qs, 10, opt)
	}
}

// Add must leave the two layouts equivalent: the blocked store is rebuilt
// from the grown code set and the re-threaded clusters.
func TestScanLayoutEquivalenceAfterAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	x := skewedData(rng, 1200, 24, 1.1)
	extra := skewedData(rng, 300, 24, 1.1)
	blocked, rowmajor := buildBothLayouts(t, x, Config{
		NumSubspaces: 6, Budget: 42, Seed: 317, TIClusters: 25,
	})
	for _, ix := range []*Index{blocked, rowmajor} {
		if _, err := ix.Add(extra); err != nil {
			t.Fatal(err)
		}
	}
	if got := blocked.blocked.perm; len(got) != 1500 {
		t.Fatalf("blocked store not rebuilt after Add: %d positions, want 1500", len(got))
	}
	qs := layoutQuerySet(rng, x, 8)
	for _, opt := range []SearchOptions{
		{Mode: ModeHeap},
		{Mode: ModeEA},
		{Mode: ModeTIEA, VisitFrac: 0.5},
	} {
		compareLayouts(t, blocked, rowmajor, qs, 10, opt)
	}
}

// The blocked store must be an exact permutation of the canonical codes:
// every cluster member appears once, at its cluster's block, holding the
// same per-subspace indices as the row-major truth.
func TestBlockedStoreMatchesCanonicalCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	x := skewedData(rng, 900, 16, 1.0)
	cfg := Config{NumSubspaces: 4, Budget: 28, Seed: 331, TIClusters: 15, ScanLayout: LayoutBlocked}
	ix, err := Build(x, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.blocked
	seen := make([]bool, ix.n)
	for c, members := range ix.ti.clusters {
		cStart := int(bs.start[c])
		if int(bs.start[c+1])-cStart != len(members) {
			t.Fatalf("cluster %d: blocked span %d, members %d", c, int(bs.start[c+1])-cStart, len(members))
		}
		for mi, e := range members {
			p := cStart + mi
			if int(bs.perm[p]) != e.id {
				t.Fatalf("cluster %d pos %d: perm %d, want member id %d", c, mi, bs.perm[p], e.id)
			}
			if seen[e.id] {
				t.Fatalf("id %d appears twice in blocked store", e.id)
			}
			seen[e.id] = true
			row := ix.codes.Row(e.id)
			blockStart := mi &^ (blockLanes - 1)
			cnt := len(members) - blockStart
			if cnt > blockLanes {
				cnt = blockLanes
			}
			q := cStart + blockStart
			lane := mi - blockStart
			for s := 0; s < bs.m; s++ {
				var got uint16
				if bs.narrow[s] {
					got = uint16(bs.data8[q*bs.mN+bs.ord[s]*cnt+lane])
				} else {
					got = bs.data16[q*bs.mW+bs.ord[s]*cnt+lane]
				}
				if got != row[s] {
					t.Fatalf("id %d subspace %d: blocked %d, canonical %d", e.id, s, got, row[s])
				}
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("id %d missing from blocked store", id)
		}
	}
}

// A v2 round trip preserves the layout setting and rebuilds the blocked
// store, and a pre-ScanLayout (version 1) stream still loads, defaulting
// to the blocked layout.
func TestSerializeLayoutRoundTripAndLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(337))
	x := skewedData(rng, 1000, 16, 1.0)
	q := append([]float32(nil), x.Row(3)...)
	for _, layout := range []ScanLayout{LayoutBlocked, LayoutRowMajor} {
		ix, err := Build(x, x, Config{
			NumSubspaces: 4, Budget: 28, Seed: 337, TIClusters: 15, ScanLayout: layout,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Layout() != layout {
			t.Fatalf("round trip: layout %v, want %v", loaded.Layout(), layout)
		}
		if (loaded.blocked != nil) != (layout == LayoutBlocked) {
			t.Fatalf("layout %v: blocked store presence wrong after load", layout)
		}
		want, err := ix.SearchWith(q, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.SearchWith(q, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("layout %v: loaded index answers differently", layout)
		}
	}

	// Legacy: an index written in the version-1 format (no ScanLayout
	// field) must load, default to the blocked layout, and search.
	ix, err := Build(x, x, Config{NumSubspaces: 4, Budget: 28, Seed: 337, TIClusters: 15})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := ix.writeBody(&legacy, 1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&legacy)
	if err != nil {
		t.Fatalf("version-1 stream failed to load: %v", err)
	}
	if loaded.Layout() != LayoutBlocked {
		t.Fatalf("v1 load: layout %v, want default LayoutBlocked", loaded.Layout())
	}
	if loaded.blocked == nil {
		t.Fatal("v1 load: blocked store not rebuilt")
	}
	want, err := ix.SearchWith(q, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SearchWith(q, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("v1 load: loaded index answers differently")
	}
}

// selectNearestClusters must agree with a full reference sort for every
// visit count, including duplicate distances (broken by cluster id).
func TestSelectNearestClustersMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(349))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		d := make([]float32, n)
		for i := range d {
			// Coarse quantization forces plenty of exact ties.
			d[i] = float32(rng.Intn(20))
		}
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool {
			if d[ref[a]] != d[ref[b]] {
				return d[ref[a]] < d[ref[b]]
			}
			return ref[a] < ref[b]
		})
		visit := 1 + rng.Intn(n)
		s := &Searcher{clustD: d, clustIdx: make([]int, n)}
		for i := range s.clustIdx {
			s.clustIdx[i] = i
		}
		s.selectNearestClusters(visit)
		for i := 0; i < visit; i++ {
			if s.clustIdx[i] != ref[i] {
				t.Fatalf("trial %d n=%d visit=%d: prefix[%d] = %d, want %d",
					trial, n, visit, i, s.clustIdx[i], ref[i])
			}
		}
	}
}

// Build must reject layouts outside the enum.
func TestBuildRejectsUnknownLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(341))
	x := skewedData(rng, 200, 8, 1.0)
	_, err := Build(x, x, Config{NumSubspaces: 2, Budget: 10, Seed: 341, ScanLayout: ScanLayout(9)})
	if err == nil {
		t.Fatal("Build accepted an unknown ScanLayout")
	}
}
