package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// WilcoxonSignedRank runs the two-sided Wilcoxon signed-rank test on paired
// samples a and b (the paper uses it with 99% confidence to compare two
// algorithms over many datasets). It returns the W statistic and the
// normal-approximation two-sided p-value. Zero differences are dropped;
// ties share average ranks. Requires at least 5 non-zero differences for
// the approximation to be meaningful.
func WilcoxonSignedRank(a, b []float64) (w float64, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("eval: paired samples differ in length: %d vs %d", len(a), len(b))
	}
	type diff struct {
		abs  float64
		sign float64
	}
	diffs := make([]diff, 0, len(a))
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		s := 1.0
		if d < 0 {
			s = -1
		}
		diffs = append(diffs, diff{abs: math.Abs(d), sign: s})
	}
	n := len(diffs)
	if n < 5 {
		return 0, 0, errors.New("eval: Wilcoxon needs at least 5 non-zero differences")
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })
	// Average ranks over ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && diffs[j].abs == diffs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // average of ranks i+1..j
		for t := i; t < j; t++ {
			ranks[t] = avg
		}
		i = j
	}
	var wPlus, wMinus float64
	for i, d := range diffs {
		if d.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w = math.Min(wPlus, wMinus)
	mean := float64(n*(n+1)) / 4
	sd := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	if sd == 0 {
		return w, 1, nil
	}
	z := (w - mean) / sd
	p = 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return w, p, nil
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// FriedmanTest compares k algorithms over n datasets. scores[i][j] is the
// score of algorithm j on dataset i (HIGHER is better, e.g. recall). It
// returns the per-algorithm average ranks (1 = best), the chi-square
// statistic, and its p-value.
func FriedmanTest(scores [][]float64) (avgRanks []float64, chi2 float64, p float64, err error) {
	n := len(scores)
	if n < 2 {
		return nil, 0, 0, errors.New("eval: Friedman needs at least 2 datasets")
	}
	k := len(scores[0])
	if k < 2 {
		return nil, 0, 0, errors.New("eval: Friedman needs at least 2 algorithms")
	}
	rankSums := make([]float64, k)
	idx := make([]int, k)
	for i, row := range scores {
		if len(row) != k {
			return nil, 0, 0, fmt.Errorf("eval: dataset %d has %d scores, want %d", i, len(row), k)
		}
		for j := range idx {
			idx[j] = j
		}
		// Rank descending (rank 1 = highest score), average ties.
		sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		for a := 0; a < k; {
			b := a
			for b < k && row[idx[b]] == row[idx[a]] {
				b++
			}
			avg := float64(a+b+1) / 2
			for t := a; t < b; t++ {
				rankSums[idx[t]] += avg
			}
			a = b
		}
	}
	avgRanks = make([]float64, k)
	var sumSq float64
	for j := range rankSums {
		avgRanks[j] = rankSums[j] / float64(n)
		sumSq += avgRanks[j] * avgRanks[j]
	}
	kf, nf := float64(k), float64(n)
	chi2 = 12 * nf / (kf * (kf + 1)) * (sumSq - kf*(kf+1)*(kf+1)/4)
	p = chiSquareSurvival(chi2, float64(k-1))
	return avgRanks, chi2, p, nil
}

// NemenyiCD returns the critical difference of average ranks for the
// post-hoc Nemenyi test at alpha = 0.05, for k algorithms over n datasets
// (Demšar 2006). Two algorithms differ significantly when their average
// ranks differ by more than the CD.
func NemenyiCD(k, n int) (float64, error) {
	// Studentized range statistic q_0.05 / sqrt(2) per Demšar (2006),
	// Table 5, for k = 2..10.
	q := map[int]float64{
		2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850,
		7: 2.949, 8: 3.031, 9: 3.102, 10: 3.164,
	}
	qa, ok := q[k]
	if !ok {
		return 0, fmt.Errorf("eval: Nemenyi table covers 2..10 algorithms, got %d", k)
	}
	if n < 2 {
		return 0, errors.New("eval: Nemenyi needs at least 2 datasets")
	}
	return qa * math.Sqrt(float64(k*(k+1))/(6*float64(n))), nil
}

// chiSquareSurvival returns P(X >= x) for a chi-square distribution with
// df degrees of freedom, via the regularized upper incomplete gamma
// function Q(df/2, x/2).
func chiSquareSurvival(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return upperIncompleteGammaRegularized(df/2, x/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a) using the
// series for x < a+1 and the continued fraction otherwise (Numerical
// Recipes gammp/gammq structure, rewritten).
func upperIncompleteGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaContinuedFraction(a, x)
}

func lowerGammaSeries(a, x float64) float64 {
	lgA, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgA)
}

func upperGammaContinuedFraction(a, x float64) float64 {
	lgA, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgA) * h
}
