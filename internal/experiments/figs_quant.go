package experiments

import (
	"fmt"
	"io"

	"vaq/internal/core"
	"vaq/internal/eval"
)

// RunFig1 reproduces Figure 1: PQ, OPQ, Bolt, PQFS and VAQ at a 256-bit
// budget with 64 subspaces (4 bits/subspace for the uniform methods) on
// SIFT, DEEP and SALD. Reported: recall@100 and average query time.
// Expected shape: VAQ beats everyone on recall and beats PQ/OPQ/PQFS on
// time; Bolt is fastest-or-close but least accurate; OPQ only marginally
// improves on PQ (and can regress on SALD).
func RunFig1(w io.Writer, s Scale) error {
	const budget, segs, k = 256, 64, 100
	for _, name := range []string{"SIFT", "DEEP", "SALD"} {
		ds, gt, err := largeDataset(name, s, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s (n=%d d=%d, budget=%d bits, %d subspaces, recall@%d) ==\n",
			name, ds.Base.Rows, ds.Dim(), budget, segs, k)
		cfg := vaqConfig(budget, segs, s.Seed)
		cfg.MaxBits = 8
		vaqM, err := buildVAQ("VAQ", ds, cfg, core.SearchOptions{VisitFrac: 0.25})
		if err != nil {
			return err
		}
		pqM, err := buildPQ("PQ", ds, segs, budget/segs, s.Seed)
		if err != nil {
			return err
		}
		opqM, err := buildOPQ("OPQ", ds, segs, budget/segs, s.Seed)
		if err != nil {
			return err
		}
		boltM, err := buildBolt("Bolt", ds, budget, s.Seed)
		if err != nil {
			return err
		}
		pqfsM, err := buildPQFS("PQFS", ds, segs, budget/segs, s.Seed)
		if err != nil {
			return err
		}
		var rows []measured
		for _, m := range []*method{vaqM, pqM, opqM, boltM, pqfsM} {
			row, err := evaluate(m, ds.Queries, gt, k)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		printTable(w, rows, "PQ")
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig6 reproduces Figure 6: VAQ vs PQ, OPQ and ITQ-LSH under the
// paper's standard settings (256 bits / 32 subspaces for SIFT, SALD and
// DEEP; 128 bits / 16 subspaces for ASTRO and SEISMIC; VAQ min 1 / max 13
// bits). Reported: MAP@100 and average query time. Expected shape: VAQ
// best MAP and fastest; ITQ-LSH fast-ish but far behind in accuracy.
func RunFig6(w io.Writer, s Scale) error {
	const k = 100
	type setting struct {
		name         string
		budget, segs int
	}
	settings := []setting{
		{"SIFT", 256, 32}, {"SALD", 256, 32}, {"DEEP", 256, 32},
		{"ASTRO", 128, 16}, {"SEISMIC", 128, 16},
	}
	for _, st := range settings {
		ds, gt, err := largeDataset(st.name, s, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s (n=%d d=%d, budget=%d bits, %d subspaces, MAP@%d) ==\n",
			st.name, ds.Base.Rows, ds.Dim(), st.budget, st.segs, k)
		vaqM, err := buildVAQ("VAQ", ds, vaqConfig(st.budget, st.segs, s.Seed),
			core.SearchOptions{VisitFrac: 0.25})
		if err != nil {
			return err
		}
		pqM, err := buildPQ("PQ", ds, st.segs, st.budget/st.segs, s.Seed)
		if err != nil {
			return err
		}
		opqM, err := buildOPQ("OPQ", ds, st.segs, st.budget/st.segs, s.Seed)
		if err != nil {
			return err
		}
		itqM, err := buildITQ("ITQ-LSH", ds, st.budget, s.Seed)
		if err != nil {
			return err
		}
		var rows []measured
		for _, m := range []*method{vaqM, pqM, opqM, itqM} {
			row, err := evaluate(m, ds.Queries, gt, k)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		printTable(w, rows, "PQ")
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig7 reproduces Figure 7: one VAQ index per dataset, queried under
// the four pruning settings — Heap (no pruning), EA, TI+EA visiting 25%
// of the 1000 clusters, and TI+EA visiting 10%. Expected shape: each step
// of the cascade is faster, accuracy essentially unchanged.
func RunFig7(w io.Writer, s Scale) error {
	const k = 100
	type setting struct {
		name         string
		budget, segs int
	}
	settings := []setting{
		{"SIFT", 256, 32}, {"SALD", 256, 32}, {"DEEP", 256, 32},
		{"ASTRO", 128, 16}, {"SEISMIC", 128, 16},
	}
	for _, st := range settings {
		ds, gt, err := largeDataset(st.name, s, k)
		if err != nil {
			return err
		}
		cfg := vaqConfig(st.budget, st.segs, s.Seed)
		ix, err := core.Build(ds.Train, ds.Base, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s (n=%d, %d TI clusters) ==\n", st.name, ds.Base.Rows, ix.TIClusterCount())
		variants := []struct {
			name string
			opt  core.SearchOptions
		}{
			{"Heap", core.SearchOptions{Mode: core.ModeHeap}},
			{"EA", core.SearchOptions{Mode: core.ModeEA}},
			{"TI+EA-0.25", core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.25}},
			{"TI+EA-0.1", core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.10}},
		}
		var rows []measured
		for _, v := range variants {
			searcher := ix.NewSearcher()
			opt := v.opt
			m := &method{name: v.name, search: func(q []float32, k int) ([]int, error) {
				res, err := searcher.Search(q, k, opt)
				if err != nil {
					return nil, err
				}
				return eval.IDs(res), nil
			}}
			row, err := evaluate(m, ds.Queries, gt, k)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		printTable(w, rows, "Heap")
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig8 reproduces Figure 8: VAQ against the hardware-accelerated
// scanners Bolt and PQFS at a 256-bit budget, reporting recall@100, query
// time, and the speedup@recall of VAQ over each rival (valid whenever VAQ
// reaches at least the rival's recall). Expected shape: VAQ dominates both
// on speedup@recall; Bolt is fast but inaccurate; PQFS accurate but slow.
func RunFig8(w io.Writer, s Scale) error {
	const budget, k = 256, 100
	for _, name := range []string{"SIFT", "DEEP", "SALD"} {
		ds, gt, err := largeDataset(name, s, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s (budget=%d bits, recall@%d) ==\n", name, budget, k)
		cfg := vaqConfig(budget, 64, s.Seed)
		cfg.MaxBits = 8
		vaqM, err := buildVAQ("VAQ", ds, cfg, core.SearchOptions{VisitFrac: 0.10})
		if err != nil {
			return err
		}
		boltM, err := buildBolt("Bolt", ds, budget, s.Seed)
		if err != nil {
			return err
		}
		pqfsM, err := buildPQFS("PQFS", ds, 64, budget/64, s.Seed)
		if err != nil {
			return err
		}
		var rows []measured
		for _, m := range []*method{vaqM, boltM, pqfsM} {
			row, err := evaluate(m, ds.Queries, gt, k)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		printTable(w, rows, "")
		vaqRow := rows[0]
		for _, r := range rows[1:] {
			if vaqRow.recall >= r.recall-1e-9 && vaqRow.avgQuerySec > 0 {
				fmt.Fprintf(w, "speedup@recall of VAQ vs %s: %.2fx (VAQ recall %.4f >= %s recall %.4f)\n",
					r.name, r.avgQuerySec/vaqRow.avgQuerySec, vaqRow.recall, r.name, r.recall)
			} else {
				fmt.Fprintf(w, "speedup@recall of VAQ vs %s: n/a (VAQ recall %.4f < %.4f)\n",
					r.name, vaqRow.recall, r.recall)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunFig9 reproduces Figure 9 on SIFT: every combination of uniform vs
// clustered (non-uniform) subspaces with uniform vs adaptive bit
// allocation, across budgets and segment counts. Expected shape: adaptive
// allocation always helps; non-uniform subspaces alone do not.
func RunFig9(w io.Writer, s Scale) error {
	const k = 100
	ds, gt, err := largeDataset("SIFT", s, k)
	if err != nil {
		return err
	}
	budgets := []int{256, 128}
	segss := []int{64, 32, 16}
	if s.N <= QuickScale.N {
		budgets = []int{128}
		segss = []int{32, 16}
	}
	for _, budget := range budgets {
		for _, segs := range segss {
			fmt.Fprintf(w, "== SIFT budget=%d bits, %d segments (recall@%d) ==\n", budget, segs, k)
			var rows []measured
			for _, nonUniform := range []bool{false, true} {
				for _, adaptive := range []bool{false, true} {
					cfg := vaqConfig(budget, segs, s.Seed)
					cfg.MaxBits = 8
					cfg.NonUniform = nonUniform
					if !adaptive {
						cfg.Alloc = core.AllocUniform
					}
					name := "uniform-subs"
					if nonUniform {
						name = "clustered-subs"
					}
					if adaptive {
						name += "+adaptive-bits"
					} else {
						name += "+uniform-bits"
					}
					m, err := buildVAQ(name, ds, cfg, core.SearchOptions{Mode: core.ModeHeap})
					if err != nil {
						return err
					}
					row, err := evaluate(m, ds.Queries, gt, k)
					if err != nil {
						return err
					}
					rows = append(rows, row)
				}
			}
			printTable(w, rows, "")
			fmt.Fprintln(w)
		}
	}
	return nil
}

// RunAblationAlloc compares the three bit-allocation strategies (DESIGN.md
// §5) on the strongly-skewed SALD stand-in and prints the allocations.
func RunAblationAlloc(w io.Writer, s Scale) error {
	const k = 100
	ds, gt, err := largeDataset("SALD", s, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== SALD (n=%d, 128 bits, 16 subspaces, recall@%d) ==\n", ds.Base.Rows, k)
	var rows []measured
	for _, st := range []core.AllocStrategy{core.AllocMILP, core.AllocTransformCoding, core.AllocUniform} {
		cfg := vaqConfig(128, 16, s.Seed)
		cfg.Alloc = st
		ix, err := core.Build(ds.Train, ds.Base, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "allocation[%s] = %v\n", st, ix.Bits())
		searcher := ix.NewSearcher()
		m := &method{name: st.String(), search: func(q []float32, k int) ([]int, error) {
			res, err := searcher.Search(q, k, core.SearchOptions{VisitFrac: 0.25})
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}}
		row, err := evaluate(m, ds.Queries, gt, k)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	printTable(w, rows, "")
	return nil
}

// RunAblationTI sweeps the TI visit fraction (DESIGN.md §5) and reports
// the recall/time trade-off, with VisitFrac = 1.0 as the exact-scan
// anchor.
func RunAblationTI(w io.Writer, s Scale) error {
	const k = 100
	ds, gt, err := largeDataset("SALD", s, k)
	if err != nil {
		return err
	}
	cfg := vaqConfig(256, 32, s.Seed)
	ix, err := core.Build(ds.Train, ds.Base, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== SALD (n=%d, 256 bits, 32 subspaces, %d TI clusters, recall@%d) ==\n",
		ds.Base.Rows, ix.TIClusterCount(), k)
	var rows []measured
	for _, frac := range []float64{0.05, 0.10, 0.25, 0.50, 1.00} {
		searcher := ix.NewSearcher()
		f := frac
		m := &method{name: fmt.Sprintf("visit-%.2f", f), search: func(q []float32, k int) ([]int, error) {
			res, err := searcher.Search(q, k, core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: f})
			if err != nil {
				return nil, err
			}
			return eval.IDs(res), nil
		}}
		row, err := evaluate(m, ds.Queries, gt, k)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	printTable(w, rows, "visit-1.00")
	return nil
}
