// Package alert is the unified alert bus behind the stack's edge-triggered
// anomaly detectors (vaq.drift, vaq.skew, vaq.slo.*). Before it existed,
// each detector carried its own copy of the same CAS latch — fire once when
// a windowed condition crosses its threshold, re-arm when it recovers — and
// the only consumer was a slog line. The bus factors that latch into one
// Source type and makes the edges consumable: named sources register on a
// per-index Bus that keeps their firing state and a bounded event history,
// fans breach/recovery edges out to registered callbacks (the flight
// recorder's trigger) and channel subscribers (the future drift-triggered
// rebuild loop), and snapshots cleanly into incident bundles.
//
// The package is stdlib-only and imports nothing from this repository, so
// every layer (internal/metrics, internal/core, internal/bundle, the public
// API) can depend on it without cycles. All types are nil-safe: a nil
// *Source or nil *Bus records nothing, which keeps the disabled cost at a
// call site to one pointer check — the same contract internal/metrics
// established.
package alert

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one latch edge: a source crossing into firing (a breach) or back
// out (a recovery). Seq is a bus-wide monotonic sequence number, so event
// order is total even across sources.
type Event struct {
	// Source is the emitting source's registered name (e.g. "vaq.skew").
	Source string `json:"source"`
	// Firing is true for a breach edge, false for a recovery edge.
	Firing bool `json:"firing"`
	// Seq orders events bus-wide, starting at 1.
	Seq uint64 `json:"seq"`
	// Time is the edge's wall-clock timestamp.
	Time time.Time `json:"time"`
}

// Source is the shared edge-triggered latch: Set folds one evaluation of a
// boolean condition into it, and exactly the false→true transition reports
// as a breach edge. The three detectors that previously each hand-rolled
// this (SLO budget exhaustion, windowed shard skew, quantization drift) now
// hold a Source instead of a raw atomic.Bool. Set is called from the query
// path, so the steady-state cost is one atomic load-compare (the CAS only
// runs on edges, which are rare by construction).
type Source struct {
	name string
	bus  *Bus // nil for a standalone (bus-less) source
	// firing is the latch; fires/recoveries count edges ever.
	firing     atomic.Bool
	fires      atomic.Uint64
	recoveries atomic.Uint64
	// lastSeq/lastNs describe the newest edge (bus seq 0 for standalone
	// sources; lastNs is UnixNano, 0 = never fired).
	lastSeq atomic.Uint64
	lastNs  atomic.Int64
}

// NewSource returns a standalone latch not attached to any bus — the shape
// used when metrics are disabled but the detector (and its slog event) must
// keep working. Bus-attached sources come from Bus.Source.
func NewSource(name string) *Source { return &Source{name: name} }

// Name reports the source's registered name.
func (s *Source) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Firing reports the latch state: true from a breach edge until the
// condition recovers (or Reset re-arms it).
func (s *Source) Firing() bool { return s != nil && s.firing.Load() }

// Fires reports how many breach edges the source has ever emitted.
func (s *Source) Fires() uint64 {
	if s == nil {
		return 0
	}
	return s.fires.Load()
}

// Recoveries counts recovery edges ever observed (Reset re-arms are not
// recoveries and are not counted).
func (s *Source) Recoveries() uint64 {
	if s == nil {
		return 0
	}
	return s.recoveries.Load()
}

// Set folds one evaluation of the source's condition into the latch and
// reports whether this call was the breach edge (false→true) — the caller's
// cue to run its once-per-crossing work (the slog event). While the
// condition holds, repeated Set(true) calls return false; Set(false) re-arms
// the latch, emitting a recovery edge to the bus. Safe for concurrent use:
// the CAS guarantees exactly one caller wins each edge.
func (s *Source) Set(firing bool) bool {
	if s == nil {
		return false
	}
	if firing {
		if s.firing.CompareAndSwap(false, true) {
			s.fires.Add(1)
			s.publish(true)
			return true
		}
		return false
	}
	if s.firing.CompareAndSwap(true, false) {
		s.recoveries.Add(1)
		s.publish(false)
	}
	return false
}

// Reset re-arms the latch without emitting a recovery edge — the
// metrics.Reset semantics: the evaluation window was zeroed, not observed
// to recover. The next Set(true) fires again.
func (s *Source) Reset() {
	if s == nil {
		return
	}
	s.firing.Store(false)
}

// publish stamps the edge and hands it to the bus (if any).
func (s *Source) publish(firing bool) {
	now := time.Now()
	s.lastNs.Store(now.UnixNano())
	if s.bus == nil {
		return
	}
	seq := s.bus.publish(s.name, firing, now)
	s.lastSeq.Store(seq)
}

// Status is one source's point-in-time state, JSON-shaped for incident
// bundles and the /debug/vaq/bundle listing.
type Status struct {
	Name       string    `json:"name"`
	Firing     bool      `json:"firing"`
	Fires      uint64    `json:"fires"`
	Recoveries uint64    `json:"recoveries"`
	LastEvent  time.Time `json:"last_event,omitempty"`
}

// Status snapshots the source.
func (s *Source) Status() Status {
	if s == nil {
		return Status{}
	}
	st := Status{
		Name:       s.name,
		Firing:     s.firing.Load(),
		Fires:      s.fires.Load(),
		Recoveries: s.recoveries.Load(),
	}
	if ns := s.lastNs.Load(); ns != 0 {
		st.LastEvent = time.Unix(0, ns)
	}
	return st
}

// historySize bounds the bus's event ring. Edges are rare (each needs a
// recovery before the next breach), so 64 spans far more incident context
// than any bundle needs.
const historySize = 64

// Bus is a registry of named alert sources plus the fan-out machinery:
// a bounded event history, edge callbacks, and channel subscriptions.
// One bus per index registry (metrics.IndexMetrics.Alerts). All methods
// are safe for concurrent use and nil-safe.
type Bus struct {
	mu      sync.Mutex
	sources map[string]*Source
	order   []string
	subs    map[int]chan Event
	edgeFns map[int]func(Event)
	nextID  int

	seq     atomic.Uint64
	history [historySize]atomic.Pointer[Event]
	dropped atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		sources: make(map[string]*Source),
		subs:    make(map[int]chan Event),
		edgeFns: make(map[int]func(Event)),
	}
}

// Source returns the named source, registering it on first use — the
// register-or-get idiom lets detectors reconfigure (ConfigureSLO replacing
// its state) without losing the source's firing history. A nil bus returns
// a nil source, whose methods all no-op.
func (b *Bus) Source(name string) *Source {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.sources[name]; ok {
		return s
	}
	s := &Source{name: name, bus: b}
	b.sources[name] = s
	b.order = append(b.order, name)
	return s
}

// Lookup returns the named source, or nil when it was never registered.
func (b *Bus) Lookup(name string) *Source {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sources[name]
}

// Sources returns every registered source in registration order.
func (b *Bus) Sources() []*Source {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Source, len(b.order))
	for i, name := range b.order {
		out[i] = b.sources[name]
	}
	return out
}

// Snapshot returns every source's status in registration order.
func (b *Bus) Snapshot() []Status {
	srcs := b.Sources()
	if srcs == nil {
		return nil
	}
	out := make([]Status, len(srcs))
	for i, s := range srcs {
		out[i] = s.Status()
	}
	return out
}

// ResetAll re-arms every registered latch without emitting recovery edges —
// the metrics.Reset hook: after the windows are zeroed, a persisting
// condition fires (and triggers) again.
func (b *Bus) ResetAll() {
	if b == nil {
		return
	}
	for _, s := range b.Sources() {
		s.Reset()
	}
}

// Subscribe returns a channel receiving every subsequent event and a cancel
// function. The channel is buffered at buf (minimum 1) and sends never
// block: when a subscriber falls behind, events are dropped for it (counted
// bus-wide in DroppedEvents). The rebuild-loop shape: consumers poll state
// via Snapshot after a wake-up rather than relying on lossless delivery.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if b == nil {
		return nil, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// OnEdge registers a callback invoked on every subsequent event (breach and
// recovery edges both; check Event.Firing) and returns a cancel function.
// Callbacks run on the goroutine that observed the edge — the query path —
// so they must be cheap and non-blocking (the flight recorder's callback is
// one non-blocking channel send).
func (b *Bus) OnEdge(fn func(Event)) func() {
	if b == nil || fn == nil {
		return func() {}
	}
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.edgeFns[id] = fn
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.edgeFns, id)
		b.mu.Unlock()
	}
}

// History returns the retained events, oldest first (at most historySize;
// older events fall off the ring).
func (b *Bus) History() []Event {
	if b == nil {
		return nil
	}
	seq := b.seq.Load()
	n := seq
	if n > historySize {
		n = historySize
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		// Oldest retained seq is seq-n+1; ring slot is (s-1) % historySize.
		s := seq - n + 1 + i
		ev := b.history[(s-1)%historySize].Load()
		if ev != nil && ev.Seq == s {
			out = append(out, *ev)
		}
	}
	return out
}

// DroppedEvents reports how many events could not be delivered to some
// subscriber channel (history and callbacks are never dropped).
func (b *Bus) DroppedEvents() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// publish files one edge: history ring, subscriber channels (non-blocking),
// edge callbacks (outside the bus lock). Returns the assigned sequence
// number.
func (b *Bus) publish(source string, firing bool, at time.Time) uint64 {
	seq := b.seq.Add(1)
	ev := Event{Source: source, Firing: firing, Seq: seq, Time: at}
	b.history[(seq-1)%historySize].Store(&ev)
	b.mu.Lock()
	var fns []func(Event)
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped.Add(1)
		}
	}
	if len(b.edgeFns) > 0 {
		fns = make([]func(Event), 0, len(b.edgeFns))
		for _, fn := range b.edgeFns {
			fns = append(fns, fn)
		}
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
	return seq
}
