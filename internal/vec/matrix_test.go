package vec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("wrong values: %v", m.Data)
	}
	if _, err := FromRows([][]float32{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows should fail")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty FromRows: %v %v", empty, err)
	}
}

func TestRowAliases(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row must alias backing storage")
	}
	if got := len(m.Row(0)); got != 3 {
		t.Fatalf("row length %d", got)
	}
}

func TestSetAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Fatal("Set/At mismatch")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone should be Equal")
	}
}

func TestSliceRows(t *testing.T) {
	m, _ := FromRows([][]float32{{1}, {2}, {3}, {4}})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("bad slice: %+v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must be a view")
	}
}

func TestSelectColumns(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	s := m.SelectColumns([]int{2, 0})
	want, _ := FromRows([][]float32{{3, 1}, {6, 4}})
	if !s.Equal(want) {
		t.Fatalf("got %v", s.Data)
	}
}

func TestPermuteColumns(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 2, 3}})
	p, err := m.PermuteColumns([]int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) != 2 || p.At(0, 2) != 1 {
		t.Fatalf("bad permutation result %v", p.Data)
	}
	if _, err := m.PermuteColumns([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate entries must fail")
	}
	if _, err := m.PermuteColumns([]int{0, 1}); err == nil {
		t.Fatal("short permutation must fail")
	}
	if _, err := m.PermuteColumns([]int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range entry must fail")
	}
}

func TestMulTransposed(t *testing.T) {
	a, _ := FromRows([][]float32{{1, 2}, {3, 4}})
	bT, _ := FromRows([][]float32{{1, 0}, {0, 1}, {1, 1}})
	got, err := a.MulTransposed(bT)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float32{{1, 2, 3}, {3, 4, 7}})
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got.Data, want.Data)
	}
	if _, err := a.MulTransposed(NewMatrix(2, 3)); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(17, 9)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadMatrixBadMagic(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader([]byte("XXXX0000000000000000"))); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestSquaredL2Known(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{2, 2, 1, 4, 8}
	if got := SquaredL2(a, b); got != 1+4+9 {
		t.Fatalf("got %v", got)
	}
	if got := L2([]float32{0, 3}, []float32{4, 0}); got != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestDotKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6}
	b := []float32{6, 5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 56 {
		t.Fatalf("got %v", got)
	}
}

func TestNormAndNormalize(t *testing.T) {
	a := []float32{3, 4}
	if Norm(a) != 5 {
		t.Fatal("norm")
	}
	Normalize(a)
	if math.Abs(float64(Norm(a))-1) > 1e-6 {
		t.Fatalf("normalized norm %v", Norm(a))
	}
	z := []float32{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestZNormalize(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	ZNormalize(a)
	var sum, ss float64
	for _, v := range a {
		sum += float64(v)
		ss += float64(v) * float64(v)
	}
	if math.Abs(sum) > 1e-5 {
		t.Fatalf("mean %v", sum/5)
	}
	if math.Abs(ss/5-1) > 1e-5 {
		t.Fatalf("variance %v", ss/5)
	}
	c := []float32{7, 7, 7}
	ZNormalize(c)
	for _, v := range c {
		if v != 0 {
			t.Fatal("constant vector should z-normalize to zero")
		}
	}
	ZNormalize(nil) // must not panic
}

func TestColumnStats(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 10}, {3, 10}})
	means := ColumnMeans(m)
	if means[0] != 2 || means[1] != 10 {
		t.Fatalf("means %v", means)
	}
	vars := ColumnVariances(m)
	if vars[0] != 1 || vars[1] != 0 {
		t.Fatalf("vars %v", vars)
	}
}

// Property: SquaredL2 agrees with a scalar float64 reference within
// tolerance, for random vectors.
func TestSquaredL2Property(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%33 + 1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*10 - 5
			b[i] = rng.Float32()*10 - 5
		}
		var ref float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			ref += d * d
		}
		got := float64(SquaredL2(a, b))
		return math.Abs(got-ref) <= 1e-3*(1+ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distance axioms — symmetry, identity, triangle inequality.
func TestL2MetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		a, b, c := make([]float32, n), make([]float32, n), make([]float32, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.Float32(), rng.Float32(), rng.Float32()
		}
		ab, ba := L2(a, b), L2(b, a)
		if ab != ba {
			return false
		}
		if L2(a, a) != 0 {
			return false
		}
		return float64(L2(a, c)) <= float64(L2(a, b))+float64(L2(b, c))+1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKBasics(t *testing.T) {
	tk := NewTopK(3)
	if tk.Full() || tk.Len() != 0 {
		t.Fatal("fresh TopK should be empty")
	}
	if tk.Threshold() != maxFloat32 {
		t.Fatal("threshold before full should be max")
	}
	tk.Push(1, 5)
	tk.Push(2, 3)
	tk.Push(3, 8)
	if !tk.Full() {
		t.Fatal("should be full")
	}
	if tk.Threshold() != 8 {
		t.Fatalf("threshold %v", tk.Threshold())
	}
	if ok := tk.Push(4, 9); ok {
		t.Fatal("worse candidate must be rejected")
	}
	if ok := tk.Push(5, 1); !ok {
		t.Fatal("better candidate must be accepted")
	}
	res := tk.Results()
	if len(res) != 3 || res[0].ID != 5 || res[2].ID != 1 {
		t.Fatalf("results %v", res)
	}
	tk.Reset()
	if tk.Len() != 0 {
		t.Fatal("reset should empty")
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopK(0)
}

// Property: TopK returns exactly the k smallest distances, in order.
func TestTopKProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw)%10 + 1
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		dists := make([]float32, n)
		tk := NewTopK(k)
		for i := 0; i < n; i++ {
			dists[i] = rng.Float32()
			tk.Push(i, dists[i])
		}
		res := tk.Results()
		want := k
		if n < k {
			want = n
		}
		if len(res) != want {
			return false
		}
		// Results must be sorted and match a reference selection.
		ref := NewTopK(k)
		for i, d := range dists {
			ref.Push(i, d)
		}
		refRes := ref.Results()
		for i := range res {
			if i > 0 && res[i].Dist < res[i-1].Dist {
				return false
			}
			if res[i] != refRes[i] {
				return false
			}
		}
		// Every retained distance must be <= every dropped distance.
		thr := res[len(res)-1].Dist
		kept := make(map[int]bool, len(res))
		for _, r := range res {
			kept[r.ID] = true
		}
		for i, d := range dists {
			if !kept[i] && d < thr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
