package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EigMethod selects the symmetric eigendecomposition algorithm.
type EigMethod int

const (
	// EigAuto picks Jacobi for small matrices (d <= 64) and
	// Householder+QL otherwise.
	EigAuto EigMethod = iota
	// EigJacobi runs the cyclic Jacobi rotation method: very robust,
	// O(d^3) per sweep, best for small d.
	EigJacobi
	// EigQL runs Householder tridiagonalization followed by the implicit
	// shift QL algorithm: the standard O(d^3) dense symmetric solver.
	EigQL
)

// EigResult holds a symmetric eigendecomposition A = V diag(values) Vᵀ with
// eigenvalues sorted in descending order and Vectors holding the matching
// eigenvectors as columns (Vectors.Col(i) pairs with Values[i]).
type EigResult struct {
	Values  []float64
	Vectors *Dense
}

// SymEig computes the eigendecomposition of the symmetric matrix a.
// The input is not modified. Symmetry is enforced by averaging a with its
// transpose, so tiny asymmetries from accumulated rounding are tolerated.
func SymEig(a *Dense, method EigMethod) (*EigResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SymEig needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return &EigResult{Values: nil, Vectors: NewDense(0, 0)}, nil
	}
	w := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	m := method
	if m == EigAuto {
		if n <= 64 {
			m = EigJacobi
		} else {
			m = EigQL
		}
	}
	var res *EigResult
	var err error
	switch m {
	case EigJacobi:
		res, err = jacobiEig(w)
	case EigQL:
		res, err = qlEig(w)
	default:
		return nil, fmt.Errorf("linalg: unknown eigen method %d", method)
	}
	if err != nil {
		return nil, err
	}
	sortEigDescending(res)
	return res, nil
}

func sortEigDescending(r *EigResult) {
	n := len(r.Values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r.Values[idx[a]] > r.Values[idx[b]] })
	vals := make([]float64, n)
	vecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		vals[newCol] = r.Values[oldCol]
		for row := 0; row < n; row++ {
			vecs.Set(row, newCol, r.Vectors.At(row, oldCol))
		}
	}
	r.Values = vals
	r.Vectors = vecs
}

// jacobiEig implements the cyclic Jacobi method. w is destroyed.
func jacobiEig(w *Dense) (*EigResult, error) {
	n := w.Rows
	v := Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += w.At(p, q) * w.At(p, q)
			}
		}
		if off < 1e-28*float64(n*n) {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = w.At(i, i)
			}
			return &EigResult{Values: vals, Vectors: v}, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Skip rotations that cannot change anything at
				// double precision.
				if math.Abs(apq) < 1e-300 ||
					math.Abs(apq) <= 1e-17*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				// Apply rotation J(p,q,theta) on both sides of w.
				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip := w.At(i, p)
					aiq := w.At(i, q)
					w.Set(i, p, aip-s*(aiq+tau*aip))
					w.Set(p, i, w.At(i, p))
					w.Set(i, q, aiq+s*(aip-tau*aiq))
					w.Set(q, i, w.At(i, q))
				}
				for i := 0; i < n; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
	}
	return nil, errors.New("linalg: Jacobi eigensolver did not converge")
}

// qlEig implements Householder tridiagonalization followed by the implicit
// shift QL algorithm (Numerical Recipes tred2/tqli structure, rewritten).
// w is destroyed and becomes the accumulated orthogonal transform.
func qlEig(w *Dense) (*EigResult, error) {
	n := w.Rows
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // subdiagonal
	tred2(w, d, e)
	if err := tqli(d, e, w); err != nil {
		return nil, err
	}
	return &EigResult{Values: d, Vectors: w}, nil
}

// tred2 reduces the symmetric matrix a to tridiagonal form, accumulating the
// orthogonal transform in a itself.
func tred2(a *Dense, d, e []float64) {
	n := a.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale == 0 {
				e[i] = a.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					a.Set(i, k, a.At(i, k)/scale)
					h += a.At(i, k) * a.At(i, k)
				}
				f := a.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					a.Set(j, i, a.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += a.At(j, k) * a.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += a.At(k, j) * a.At(i, k)
					}
					e[j] = g / h
					f += e[j] * a.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a.Set(j, k, a.At(j, k)-f*e[k]-g*a.At(i, k))
					}
				}
			}
		} else {
			e[i] = a.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += a.At(i, k) * a.At(k, j)
				}
				for k := 0; k <= l; k++ {
					a.Set(k, j, a.At(k, j)-g*a.At(k, i))
				}
			}
		}
		d[i] = a.At(i, i)
		a.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			a.Set(j, i, 0)
			a.Set(i, j, 0)
		}
	}
}

// tqli diagonalizes a tridiagonal matrix (diagonal d, subdiagonal e) with
// implicit QL shifts, rotating the eigenvector matrix z along.
func tqli(d, e []float64, z *Dense) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter >= 64 {
				return errors.New("linalg: QL eigensolver did not converge")
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-300 || math.Abs(e[m]) <= 2.3e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < z.Rows; k++ {
					f := z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}
