// Package bundle is the flight recorder behind the alert bus: while armed
// it continuously keeps low-overhead recent context (a metrics history
// collector — the index's own when one is armed, a private fallback
// sampler otherwise; query traces and sampled queries live in the
// tracer and workload rings the index already maintains), and on any alert
// breach edge — or a manual trigger — freezes that context into a
// versioned incident bundle on disk. A bundle is one directory holding the
// metrics snapshot (JSON and a Prometheus scrape), the recent/slow query
// traces as a Chrome trace, the recent workload as a replayable .vaqwl log,
// the per-index quality reports, runtime/heap stats, and a manifest tying
// it together with config-fingerprint provenance and per-file sha256s.
// The manifest is written last, so its presence marks a complete bundle —
// the contract pollers and the vaqdiag validator rely on.
//
// The recorder never writes on the query path: alert edges arrive through
// a non-blocking channel send and the bundle is assembled on the
// recorder's own goroutine, after a short post-trigger delay that lets the
// queries around the incident land in the workload ring first.
package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/alert"
	"vaq/internal/diag"
	"vaq/internal/history"
	"vaq/internal/metrics"
	"vaq/internal/trace"
	"vaq/internal/workload"
)

// FormatVersion identifies the incident-bundle layout (manifest fields,
// canonical file set). Readers reject bundles from a future version.
// Version 2 replaced the metrics_window.json snapshot ring with the
// history.json frozen time-series dump.
const FormatVersion = 2

// ManifestName is the bundle's completion marker and integrity record; it
// is always written last.
const ManifestName = "manifest.json"

// Config tunes a Recorder. Dir is required; everything else defaults.
type Config struct {
	// Dir is the directory incident bundles are written under (one
	// subdirectory per bundle). Created on first use. A Recorder assumes
	// it owns Dir's bundle-* entries.
	Dir string
	// SnapshotInterval is the sampling cadence of the fallback history
	// collector the Recorder runs when no index-level collector is wired in
	// through Hooks.History (default 2s).
	SnapshotInterval time.Duration
	// SnapshotWindow is the fallback collector's raw ring capacity in
	// samples (default 32 — about a minute of context at the default
	// interval; the 10s/1m downsampled tiers extend further back).
	SnapshotWindow int
	// TriggerDelay is how long the recorder waits after an alert edge
	// before freezing the bundle, so the queries around the incident reach
	// the workload and trace rings first (default 1s; pending triggers are
	// flushed without the remaining delay on Close).
	TriggerDelay time.Duration
	// MaxBundles caps alert-triggered bundles per Recorder lifetime
	// (default 64) so a flapping alert cannot fill the disk; skipped
	// triggers are counted in Status. Manual Trigger calls are not capped.
	MaxBundles int
	// WorkloadSampleRate and WorkloadRing shape the workload ring the
	// index wiring (EnableFlightRecorder) installs when no capture is
	// already attached: a ring over the newest WorkloadRing records,
	// sampling at WorkloadSampleRate (defaults 4096 and 0.25). Ignored by
	// the Recorder itself, which only consumes the assembled Log.
	WorkloadSampleRate float64
	// WorkloadRing is the ring capacity (see WorkloadSampleRate).
	WorkloadRing int
}

func (c Config) withDefaults() Config {
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 2 * time.Second
	}
	if c.SnapshotWindow <= 0 {
		c.SnapshotWindow = 32
	}
	if c.TriggerDelay <= 0 {
		c.TriggerDelay = time.Second
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 64
	}
	if c.WorkloadSampleRate <= 0 {
		c.WorkloadSampleRate = 0.25
	}
	if c.WorkloadRing <= 0 {
		c.WorkloadRing = 4096
	}
	return c
}

// Info identifies the index a Recorder watches — provenance stamped into
// every manifest.
type Info struct {
	// Name is the index's published name (e.g. "vaqsearch_index").
	Name string
	// Fingerprint is the index's search-relevant config fingerprint.
	Fingerprint string
	// Shards is the shard count (0 = unsharded).
	Shards int
}

// Hooks are the context providers a Recorder freezes into bundles. Metrics
// is required; the function hooks may be nil or return nil when that
// context is unavailable.
type Hooks struct {
	// Metrics is the index's telemetry registry (required).
	Metrics *metrics.IndexMetrics
	// Alerts is the bus whose breach edges trigger bundles (required for
	// automatic triggering; Trigger still works without it).
	Alerts *alert.Bus
	// Tracer returns the active query tracer (nil = no trace context).
	Tracer func() *trace.Tracer
	// Workload returns a snapshot of the recent sampled queries (nil = no
	// workload context).
	Workload func() *workload.Log
	// Reports returns the index-quality reports (one per shard; nil = no
	// report context).
	Reports func() []*diag.Report
	// History returns a frozen dump of the index's history collector (nil =
	// no collector armed; the Recorder then runs its own burn-disabled
	// fallback sampler so history.json is always present).
	History func() *history.Dump
}

// Recorder is an armed flight recorder: a background goroutine keeping the
// metric-snapshot ring and writing bundles on alert edges, plus a
// synchronous manual-trigger path. Obtain one via New (or the index-level
// EnableFlightRecorder wiring), stop it with Close.
type Recorder struct {
	cfg   Config
	info  Info
	hooks Hooks

	armedAt    time.Time
	cancelEdge func()
	trig       chan alert.Event
	stop       chan struct{}
	done       chan struct{}
	stopOnce   sync.Once

	// writeMu serializes bundle writes (background vs manual trigger).
	writeMu sync.Mutex
	// fallback is the Recorder-owned history sampler, used whenever
	// Hooks.History is nil or reports no dump. It never registers burn
	// alerts or touches the SLO edge delegation — it is pure context
	// capture.
	fallback *history.Collector

	seq     atomic.Uint64
	written atomic.Uint64
	missed  atomic.Uint64 // edges dropped on a full trigger channel
	skipped atomic.Uint64 // edges skipped past MaxBundles
	errMu   sync.Mutex
	lastErr error
}

// New arms a flight recorder: registers the edge trigger on hooks.Alerts,
// arms the fallback history sampler, and starts
// the background goroutine. The caller must Close it to flush pending
// triggers and release the goroutines.
func New(cfg Config, info Info, hooks Hooks) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, errors.New("bundle: Config.Dir is required")
	}
	if hooks.Metrics == nil {
		return nil, errors.New("bundle: Hooks.Metrics is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	r := &Recorder{
		cfg:     cfg.withDefaults(),
		info:    info,
		hooks:   hooks,
		armedAt: time.Now(),
		trig:    make(chan alert.Event, 16),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	// The fallback sampler always arms, even when a History hook is set:
	// the hook may report nil whenever the index has no live collector (it
	// can be disabled at any time), and history.json must stay present in
	// every bundle regardless. historyDump prefers the hook's dump.
	{
		name := info.Name
		if name == "" {
			name = "index"
		}
		r.fallback = history.New(name, history.Config{
			Interval:    r.cfg.SnapshotInterval,
			RawCapacity: r.cfg.SnapshotWindow,
			DisableBurn: true,
		})
		r.fallback.Watch(name, hooks.Metrics)
	}
	if hooks.Alerts != nil {
		// Breach edges only; recovery edges re-arm the latch but record no
		// incident. The send must never block: it runs on the query path.
		r.cancelEdge = hooks.Alerts.OnEdge(func(ev alert.Event) {
			if !ev.Firing {
				return
			}
			select {
			case r.trig <- ev:
			default:
				r.missed.Add(1)
			}
		})
	}
	go r.run()
	return r, nil
}

// run is the recorder goroutine: bundle writes on alert triggers,
// drain-and-exit on stop. (Windowed context lives in the history
// collector, which samples on its own goroutine.)
func (r *Recorder) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			// Flush pending triggers without the post-trigger delay: on
			// shutdown the context rings stop filling anyway.
			for {
				select {
				case ev := <-r.trig:
					r.handleEdge(ev, false)
				default:
					return
				}
			}
		case ev := <-r.trig:
			r.handleEdge(ev, true)
		}
	}
}

// handleEdge writes one alert-triggered bundle, honoring the MaxBundles
// cap and (when delay is true) the remaining post-trigger delay.
func (r *Recorder) handleEdge(ev alert.Event, delay bool) {
	if r.written.Load() >= uint64(r.cfg.MaxBundles) {
		r.skipped.Add(1)
		return
	}
	if delay {
		if remaining := r.cfg.TriggerDelay - time.Since(ev.Time); remaining > 0 {
			select {
			case <-time.After(remaining):
			case <-r.stop:
			}
		}
	}
	if _, err := r.writeBundle(Trigger{
		Source:   ev.Source,
		Reason:   "alert",
		AlertSeq: ev.Seq,
		Time:     ev.Time,
	}); err != nil {
		r.setErr(err)
	}
}

// historyDump freezes the windowed context: the index's own collector via
// Hooks.History when armed, else the Recorder's fallback sampler.
func (r *Recorder) historyDump() *history.Dump {
	if r.hooks.History != nil {
		if d := r.hooks.History(); d != nil {
			return d
		}
	}
	if r.fallback != nil {
		return r.fallback.Dump()
	}
	return nil
}

// Trigger synchronously writes one manual bundle (reason defaults to
// "manual") and returns its manifest. Safe to call concurrently with the
// automatic path and from HTTP handlers — never from the query path, since
// assembling a bundle takes the index read lock (Diagnose).
func (r *Recorder) Trigger(reason string) (*Manifest, error) {
	if r == nil {
		return nil, errors.New("bundle: no recorder armed")
	}
	if reason == "" {
		reason = "manual"
	}
	return r.writeBundle(Trigger{Source: "manual", Reason: reason, Time: time.Now()})
}

// Close detaches the edge trigger, flushes pending alert bundles, stops
// the background goroutine, and returns the last write error (nil when
// every bundle landed). Idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.stopOnce.Do(func() {
		if r.cancelEdge != nil {
			r.cancelEdge()
		}
		close(r.stop)
	})
	<-r.done
	if r.fallback != nil {
		r.fallback.Close()
	}
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.lastErr
}

func (r *Recorder) setErr(err error) {
	r.errMu.Lock()
	r.lastErr = err
	r.errMu.Unlock()
}

// Status is the recorder's point-in-time state, served by the
// /debug/vaq/bundle endpoint and printed by vaqdiag.
type Status struct {
	Index           string         `json:"index"`
	Dir             string         `json:"dir"`
	Fingerprint     string         `json:"fingerprint,omitempty"`
	Shards          int            `json:"shards,omitempty"`
	ArmedAt         time.Time      `json:"armed_at"`
	BundlesWritten  uint64         `json:"bundles_written"`
	TriggersMissed  uint64         `json:"triggers_missed,omitempty"`
	TriggersSkipped uint64         `json:"triggers_skipped,omitempty"`
	LastError       string         `json:"last_error,omitempty"`
	Alerts          []alert.Status `json:"alerts,omitempty"`
}

// Status snapshots the recorder.
func (r *Recorder) Status() Status {
	if r == nil {
		return Status{}
	}
	st := Status{
		Index:           r.info.Name,
		Dir:             r.cfg.Dir,
		Fingerprint:     r.info.Fingerprint,
		Shards:          r.info.Shards,
		ArmedAt:         r.armedAt,
		BundlesWritten:  r.written.Load(),
		TriggersMissed:  r.missed.Load(),
		TriggersSkipped: r.skipped.Load(),
		Alerts:          r.hooks.Alerts.Snapshot(),
	}
	r.errMu.Lock()
	if r.lastErr != nil {
		st.LastError = r.lastErr.Error()
	}
	r.errMu.Unlock()
	return st
}

// Dir reports the recorder's bundle directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.cfg.Dir
}

// Trigger describes what froze a bundle: the alert source name (or
// "manual"), the bus sequence number of the breach edge, and its time.
type Trigger struct {
	Source   string    `json:"source"`
	Reason   string    `json:"reason,omitempty"`
	AlertSeq uint64    `json:"alert_seq,omitempty"`
	Time     time.Time `json:"time"`
}

// File is one bundle member's integrity record.
type File struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is the bundle's completion marker: format version, index
// provenance, the trigger, and the integrity records of every other file
// in the bundle, in canonical write order. Field order here is the
// canonical serialization order (like the .vaqwl codec, the manifest is
// versioned and its layout is part of the format).
type Manifest struct {
	FormatVersion   int       `json:"format_version"`
	Index           string    `json:"index"`
	Fingerprint     string    `json:"fingerprint,omitempty"`
	Shards          int       `json:"shards,omitempty"`
	Seq             uint64    `json:"seq"`
	Trigger         Trigger   `json:"trigger"`
	CreatedAt       time.Time `json:"created_at"`
	GoVersion       string    `json:"go_version"`
	WorkloadRecords int       `json:"workload_records"`
	Files           []File    `json:"files"`

	// Dir is where the manifest was loaded from (filled by List/Validate,
	// never serialized).
	Dir string `json:"-"`
}

// runtimeInfo is the runtime.json payload: enough process state to read an
// incident without the process.
type runtimeInfo struct {
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	NumCPU      int       `json:"num_cpu"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Goroutines  int       `json:"goroutines"`
	HeapAlloc   uint64    `json:"heap_alloc"`
	HeapSys     uint64    `json:"heap_sys"`
	HeapObjects uint64    `json:"heap_objects"`
	TotalAlloc  uint64    `json:"total_alloc"`
	NumGC       uint32    `json:"num_gc"`
	PauseTotal  uint64    `json:"pause_total_ns"`
	CapturedAt  time.Time `json:"captured_at"`
}

// alertsFile is the alerts.json payload.
type alertsFile struct {
	Sources []alert.Status `json:"sources"`
	History []alert.Event  `json:"history,omitempty"`
	Dropped uint64         `json:"dropped_events,omitempty"`
}

// sanitizeSource maps an alert source name onto a directory-name-safe
// token.
func sanitizeSource(s string) string {
	if s == "" {
		return "manual"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, s)
}

// writeBundle freezes the current context into one bundle directory and
// returns its manifest. Serialized on writeMu so automatic and manual
// triggers never interleave inside a directory.
func (r *Recorder) writeBundle(trig Trigger) (*Manifest, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()

	// Claim a fresh directory; skip over leftovers from a previous process
	// writing into the same Dir.
	var dir string
	var seq uint64
	for {
		seq = r.seq.Add(1)
		dir = filepath.Join(r.cfg.Dir, fmt.Sprintf("bundle-%06d-%s", seq, sanitizeSource(trig.Source)))
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			break
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}

	man := &Manifest{
		FormatVersion: FormatVersion,
		Index:         r.info.Name,
		Fingerprint:   r.info.Fingerprint,
		Shards:        r.info.Shards,
		Seq:           seq,
		Trigger:       trig,
		CreatedAt:     time.Now(),
		GoVersion:     runtime.Version(),
		Dir:           dir,
	}

	add := func(name string, fn func(io.Writer) error) error {
		f, err := writeHashedFile(dir, name, fn)
		if err != nil {
			return fmt.Errorf("bundle: %s: %w", name, err)
		}
		man.Files = append(man.Files, f)
		return nil
	}

	// Canonical member order (documented in DESIGN.md): metrics.json,
	// history.json, metrics.prom, alerts.json, traces.json,
	// workload.vaqwl, report.json, runtime.json — optional members are
	// skipped, never written empty.
	if err := add("metrics.json", func(w io.Writer) error {
		return writeJSON(w, r.hooks.Metrics.Snapshot())
	}); err != nil {
		return nil, err
	}
	if dump := r.historyDump(); dump != nil {
		if err := add("history.json", func(w io.Writer) error {
			return writeJSON(w, dump)
		}); err != nil {
			return nil, err
		}
	}
	if err := add("metrics.prom", func(w io.Writer) error {
		if err := metrics.WritePrometheusFor(w, r.info.Name, r.hooks.Metrics); err != nil {
			return err
		}
		return metrics.WriteRuntimeMetrics(w)
	}); err != nil {
		return nil, err
	}
	if r.hooks.Alerts != nil {
		if err := add("alerts.json", func(w io.Writer) error {
			return writeJSON(w, alertsFile{
				Sources: r.hooks.Alerts.Snapshot(),
				History: r.hooks.Alerts.History(),
				Dropped: r.hooks.Alerts.DroppedEvents(),
			})
		}); err != nil {
			return nil, err
		}
	}
	if r.hooks.Tracer != nil {
		if tr := r.hooks.Tracer(); tr != nil {
			qts := recentAndSlowest(tr)
			if len(qts) > 0 {
				if err := add("traces.json", func(w io.Writer) error {
					return trace.WriteChromeTrace(w, qts)
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	if r.hooks.Workload != nil {
		if log := r.hooks.Workload(); log != nil {
			man.WorkloadRecords = len(log.Records)
			if err := add("workload.vaqwl", func(w io.Writer) error {
				_, err := log.WriteTo(w)
				return err
			}); err != nil {
				return nil, err
			}
		}
	}
	if r.hooks.Reports != nil {
		if reps := r.hooks.Reports(); len(reps) > 0 {
			if err := add("report.json", func(w io.Writer) error {
				return writeJSON(w, reps)
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := add("runtime.json", func(w io.Writer) error {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return writeJSON(w, runtimeInfo{
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Goroutines:  runtime.NumGoroutine(),
			HeapAlloc:   ms.HeapAlloc,
			HeapSys:     ms.HeapSys,
			HeapObjects: ms.HeapObjects,
			TotalAlloc:  ms.TotalAlloc,
			NumGC:       ms.NumGC,
			PauseTotal:  ms.PauseTotalNs,
			CapturedAt:  time.Now(),
		})
	}); err != nil {
		return nil, err
	}

	// The manifest lands last: its presence marks the bundle complete.
	if _, err := writeHashedFile(dir, ManifestName, func(w io.Writer) error {
		return writeJSON(w, man)
	}); err != nil {
		return nil, fmt.Errorf("bundle: %s: %w", ManifestName, err)
	}
	r.written.Add(1)
	return man, nil
}

// recentAndSlowest merges the tracer's recent ring with its slowest-query
// ring, deduplicated, in trace-sequence order.
func recentAndSlowest(tr *trace.Tracer) []*trace.QueryTrace {
	recent := tr.Recent()
	slow, _ := tr.Slowest()
	seen := make(map[*trace.QueryTrace]struct{}, len(recent)+len(slow))
	out := make([]*trace.QueryTrace, 0, len(recent)+len(slow))
	for _, qt := range recent {
		if _, ok := seen[qt]; !ok {
			seen[qt] = struct{}{}
			out = append(out, qt)
		}
	}
	for _, qt := range slow {
		if _, ok := seen[qt]; !ok {
			seen[qt] = struct{}{}
			out = append(out, qt)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// writeJSON writes indented JSON — bundles are read by humans first.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeHashedFile writes one bundle member, returning its integrity
// record.
func writeHashedFile(dir, name string, fn func(io.Writer) error) (File, error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return File{}, err
	}
	h := sha256.New()
	cw := &countWriter{w: io.MultiWriter(f, h)}
	werr := fn(cw)
	cerr := f.Close()
	if werr != nil {
		return File{}, werr
	}
	if cerr != nil {
		return File{}, cerr
	}
	return File{Name: name, Bytes: cw.n, SHA256: hex.EncodeToString(h.Sum(nil))}, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
