package linalg

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewDense(13, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(m, got) != 0 {
		t.Fatal("round trip mismatch")
	}
}

func TestDenseReadErrors(t *testing.T) {
	if _, err := ReadDense(bytes.NewReader([]byte("XXXX0000000000000000"))); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := ReadDense(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty must fail")
	}
	// Truncated body.
	var buf bytes.Buffer
	m := Identity(4)
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDense(bytes.NewReader(buf.Bytes()[:30])); err == nil {
		t.Fatal("truncated must fail")
	}
}

func TestFloat64SliceRoundTrip(t *testing.T) {
	v := []float64{1.5, -2.25, 0, 1e300, -1e-300}
	var buf bytes.Buffer
	if err := WriteFloat64s(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFloat64s(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v) {
		t.Fatalf("length %d", len(got))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("at %d: %v vs %v", i, got[i], v[i])
		}
	}
	// Empty slice.
	buf.Reset()
	if err := WriteFloat64s(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFloat64s(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty slice: %v %v", got, err)
	}
	if _, err := ReadFloat64s(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated must fail")
	}
}
