package quantizer

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

// OPQ's transform is orthogonal (PCA, optionally composed with the
// refinement rotation), so pairwise distances must be preserved.
func TestOPQTransformIsIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := clusteredData(rng, 300, 12)
	for _, iters := range []int{0, 2} {
		opq, err := TrainOPQ(x, x, OPQConfig{
			M: 4, BitsPerSubspace: 3, NonParametricIters: iters,
			Train: TrainConfig{Seed: 21},
		})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			i, j := rng.Intn(300), rng.Intn(300)
			a, err := opq.TransformQuery(x.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			b, err := opq.TransformQuery(x.Row(j))
			if err != nil {
				t.Fatal(err)
			}
			orig := float64(vec.L2(x.Row(i), x.Row(j)))
			rot := float64(vec.L2(a, b))
			if math.Abs(orig-rot) > 1e-3*(1+orig) {
				t.Fatalf("iters=%d: distance not preserved: %v vs %v", iters, orig, rot)
			}
		}
	}
}

// Dictionaries above the hierarchical threshold must train through the
// two-level path and still encode with low error.
func TestTrainCodebooksHierarchicalPath(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := clusteredData(rng, 5000, 8)
	sub, _ := UniformSubspaces(8, 2)
	cb, err := TrainCodebooks(x, sub, []int{11, 11}, TrainConfig{
		Seed: 22, HierarchicalThreshold: 1024, Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if cb.Books[s].Rows != 1<<11 {
			t.Fatalf("book %d has %d rows", s, cb.Books[s].Rows)
		}
	}
	codes, err := cb.Encode(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if mse := cb.ReconstructionError(x, codes); mse > 0.2 {
		t.Fatalf("hierarchical 2^11 dictionaries reconstruct poorly: %v", mse)
	}
}
