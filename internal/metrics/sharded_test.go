package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scatter builds a ScatterRecord from millisecond latencies.
func scatter(ms ...int64) ScatterRecord {
	ns := make([]int64, len(ms))
	for i, v := range ms {
		ns[i] = v * int64(time.Millisecond)
	}
	return ScatterRecord{ShardLatencyNs: ns}
}

func TestRecordScatterAttribution(t *testing.T) {
	m := NewSized(3, 2)
	m.ConfigureSharded(ShardedConfig{Shards: 3, Window: 4}, nil)

	r := scatter(1, 5, 2)
	r.Hits = []int{7, 2, 1}
	m.RecordScatter(r)
	m.RecordScatter(scatter(4, 1, 1))
	m.RecordScatter(scatter(4, 1, 1))

	s := m.ShardedSnapshot()
	if s == nil {
		t.Fatal("ShardedSnapshot nil after ConfigureSharded")
	}
	if s.Shards != 3 || s.Window != 4 || s.WindowQueries != 3 {
		t.Fatalf("shape: shards=%d window=%d windowQueries=%d", s.Shards, s.Window, s.WindowQueries)
	}
	if got := s.CriticalPath; got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Errorf("critical path %v, want [2 1 0]", got)
	}
	if got := s.Hits; got[0] != 7 || got[1] != 2 || got[2] != 1 {
		t.Errorf("hits %v, want [7 2 1]", got)
	}
	// Straggler deltas: 3ms, 3ms, 3ms — one observation per scatter.
	if s.StragglerDelta.Count != 3 {
		t.Errorf("straggler delta count %d, want 3", s.StragglerDelta.Count)
	}
	if mean := s.StragglerDelta.Mean(); mean < 2*time.Millisecond || mean > 5*time.Millisecond {
		t.Errorf("straggler delta mean %s, want ~3ms", mean)
	}
	// Per-query skew ratios: 5*3/8, 4*3/6, 4*3/6 → mean (1.875+2+2)/3.
	wantSkew := (5.0*3/8 + 2 + 2) / 3
	if math.Abs(s.SkewRatio-wantSkew) > 0.01 {
		t.Errorf("skew ratio %.4f, want %.4f", s.SkewRatio, wantSkew)
	}
	// Windowed shard totals: [9, 7, 4]ms → imbalance 9*3/20.
	wantImb := 9.0 * 3 / 20
	if math.Abs(s.LoadImbalance-wantImb) > 1e-9 {
		t.Errorf("load imbalance %.4f, want %.4f", s.LoadImbalance, wantImb)
	}
}

// TestRecordScatterTieBreak pins the deterministic lowest-index tie break
// for critical-path attribution.
func TestRecordScatterTieBreak(t *testing.T) {
	m := NewSized(3, 2)
	m.ConfigureSharded(ShardedConfig{Shards: 2}, nil)
	m.RecordScatter(scatter(3, 3))
	s := m.ShardedSnapshot()
	if s.CriticalPath[0] != 1 || s.CriticalPath[1] != 0 {
		t.Errorf("tie break: critical path %v, want [1 0]", s.CriticalPath)
	}
}

// TestRecordScatterShapeMismatch: records whose latency vector does not
// match the configured shard count are dropped, not misattributed.
func TestRecordScatterShapeMismatch(t *testing.T) {
	m := NewSized(3, 2)
	m.ConfigureSharded(ShardedConfig{Shards: 3}, nil)
	m.RecordScatter(scatter(1, 2))
	if s := m.ShardedSnapshot(); s.WindowQueries != 0 {
		t.Errorf("mismatched record was folded: %d window queries", s.WindowQueries)
	}
	// Unconfigured and nil registries ignore the call entirely.
	NewSized(3, 2).RecordScatter(scatter(1, 2))
	var nilM *IndexMetrics
	nilM.RecordScatter(scatter(1))
	if nilM.ShardedSnapshot() != nil {
		t.Error("nil registry returned a sharded snapshot")
	}
}

// TestSkewAlertEdgeTriggered drives the windowed skew ratio across the
// threshold and back twice: the callback must fire exactly once per
// crossing, and the latch must be scrape-visible in between.
func TestSkewAlertEdgeTriggered(t *testing.T) {
	m := NewSized(3, 2)
	fired := 0
	var lastSkew float64
	var lastShard int
	m.ConfigureSharded(ShardedConfig{Shards: 2, Window: 2, SkewAlertRatio: 1.5},
		func(skew, imbalance float64, criticalShard int) {
			fired++
			lastSkew, lastShard = skew, criticalShard
		})

	balanced := scatter(1, 1) // ratio 1
	skewed := scatter(9, 1)   // ratio 1.8

	m.RecordScatter(balanced)
	if fired != 0 {
		t.Fatalf("alert fired on a balanced scatter")
	}
	// Window [1, 1.8]: mean 1.4 < 1.5 — still armed.
	m.RecordScatter(skewed)
	if fired != 0 {
		t.Fatalf("alert fired below threshold (windowed mean 1.4)")
	}
	// Window [1.8, 1.8]: mean 1.8 >= 1.5 — one edge.
	m.RecordScatter(skewed)
	if fired != 1 {
		t.Fatalf("alert fired %d times, want 1", fired)
	}
	if lastSkew < 1.5 || lastShard != 0 {
		t.Errorf("callback got skew=%.2f shard=%d", lastSkew, lastShard)
	}
	if !m.ShardedSnapshot().SkewAlert {
		t.Error("SkewAlert latch not visible while breached")
	}
	// Still breached: no re-fire.
	m.RecordScatter(skewed)
	if fired != 1 {
		t.Fatalf("alert re-fired while latched (%d)", fired)
	}
	// Recover the window: latch re-arms.
	m.RecordScatter(balanced)
	m.RecordScatter(balanced)
	if m.ShardedSnapshot().SkewAlert {
		t.Error("SkewAlert latch still set after recovery")
	}
	// Second breach: a fresh edge.
	m.RecordScatter(skewed)
	m.RecordScatter(skewed)
	if fired != 2 {
		t.Fatalf("alert fired %d times after second breach, want 2", fired)
	}
}

// TestShardedReset: Reset on the registry zeroes the scatter telemetry and
// re-arms the alert latch.
func TestShardedReset(t *testing.T) {
	m := NewSized(3, 2)
	m.ConfigureSharded(ShardedConfig{Shards: 2, SkewAlertRatio: 1.1}, nil)
	r := scatter(9, 1)
	r.Hits = []int{3, 1}
	m.RecordScatter(r)
	if s := m.ShardedSnapshot(); !s.SkewAlert || s.WindowQueries != 1 {
		t.Fatalf("precondition: alert=%v windowQueries=%d", s.SkewAlert, s.WindowQueries)
	}
	m.Reset()
	s := m.ShardedSnapshot()
	if s == nil {
		t.Fatal("Reset dropped the sharded configuration")
	}
	if s.WindowQueries != 0 || s.SkewRatio != 0 || s.LoadImbalance != 0 || s.SkewAlert {
		t.Errorf("Reset left residue: %+v", s)
	}
	for i, v := range s.CriticalPath {
		if v != 0 {
			t.Errorf("critical path[%d] = %d after Reset", i, v)
		}
	}
	for i, v := range s.Hits {
		if v != 0 {
			t.Errorf("hits[%d] = %d after Reset", i, v)
		}
	}
	if s.StragglerDelta.Count != 0 {
		t.Errorf("straggler delta count %d after Reset", s.StragglerDelta.Count)
	}
}

// TestShardedSnapshotInSnapshot: the merged Snapshot document carries the
// scatter telemetry (and omits it for unsharded registries).
func TestShardedSnapshotInSnapshot(t *testing.T) {
	m := NewSized(3, 2)
	if m.Snapshot().Sharded != nil {
		t.Error("unsharded registry has a Sharded block")
	}
	m.ConfigureSharded(ShardedConfig{Shards: 2}, nil)
	m.RecordScatter(scatter(2, 1))
	snap := m.Snapshot()
	if snap.Sharded == nil || snap.Sharded.CriticalPath[0] != 1 {
		t.Fatalf("Snapshot.Sharded = %+v", snap.Sharded)
	}
}

// TestWritePrometheusSharded covers the scatter families: per-shard
// counter vectors, the skew gauges, the alert gauge, and the straggler
// histogram — emitted only for sharded registries.
func TestWritePrometheusSharded(t *testing.T) {
	m := NewSized(3, 2)
	m.ConfigureSharded(ShardedConfig{Shards: 2, SkewAlertRatio: 1.1}, nil)
	r := scatter(9, 1)
	r.Hits = []int{3, 1}
	m.RecordScatter(r)
	Publish("prom_sharded", m)
	defer Publish("prom_sharded", nil)

	var b strings.Builder
	if err := WritePrometheus(&b, "prom_sharded"); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`vaq_shard_critical_path_total{index="prom_sharded",shard="0"} 1`,
		`vaq_shard_critical_path_total{index="prom_sharded",shard="1"} 0`,
		`vaq_shard_hits_total{index="prom_sharded",shard="0"} 3`,
		`vaq_shard_hits_total{index="prom_sharded",shard="1"} 1`,
		`vaq_skew_alert{index="prom_sharded"} 1`,
		`vaq_shard_straggler_delta_seconds_count{index="prom_sharded"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q\n%s", want, got)
		}
	}
	// The skew gauges are ring-quantized (1/1024 steps), so compare
	// numerically instead of by exact text.
	for _, fam := range []string{"vaq_shard_skew_ratio", "vaq_shard_load_imbalance"} {
		v, ok := scrapeGauge(got, fam+`{index="prom_sharded"}`)
		if !ok {
			t.Errorf("scrape missing %s", fam)
		} else if math.Abs(v-1.8) > 0.01 {
			t.Errorf("%s = %g, want ~1.8", fam, v)
		}
	}

	// Unsharded registries must not emit the families at all.
	u := NewSized(3, 2)
	promTestRecord(u)
	Publish("prom_unsharded", u)
	defer Publish("prom_unsharded", nil)
	b.Reset()
	if err := WritePrometheus(&b, "prom_unsharded"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "vaq_shard_") || strings.Contains(b.String(), "vaq_skew_alert") {
		t.Error("unsharded scrape contains scatter families")
	}
}

// scrapeGauge extracts the sample value of the line starting with prefix.
func scrapeGauge(body, prefix string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestSLOBreachGaugeEdge pins the vaq_slo_breach gauge through a full
// breach/recover cycle: 0 while healthy, 1 while the budget sits
// exhausted, back to 0 after the window recovers.
func TestSLOBreachGaugeEdge(t *testing.T) {
	m := NewSized(3, 2)
	m.ConfigureSLO(SLO{LatencyTarget: time.Millisecond, LatencyObjective: 0.5, Window: 4}, nil)
	Publish("prom_breach", m)
	defer Publish("prom_breach", nil)

	gauge := func() string {
		var b strings.Builder
		if err := WritePrometheus(&b, "prom_breach"); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(line, `vaq_slo_breach{index="prom_breach"}`) {
				return line[strings.LastIndex(line, " ")+1:]
			}
		}
		t.Fatal("scrape missing vaq_slo_breach")
		return ""
	}

	fast, slow := 100*time.Microsecond, 10*time.Millisecond
	m.RecordSearch(SearchRecord{}, fast)
	if g := gauge(); g != "0" {
		t.Fatalf("healthy gauge = %s, want 0", g)
	}
	// 3 of 4 windowed queries violate a 50%% objective: budget < 0.
	for i := 0; i < 3; i++ {
		m.RecordSearch(SearchRecord{}, slow)
	}
	if g := gauge(); g != "1" {
		t.Fatalf("breached gauge = %s, want 1", g)
	}
	// Refill the window with fast queries: budget recovers, gauge drops.
	for i := 0; i < 4; i++ {
		m.RecordSearch(SearchRecord{}, fast)
	}
	if g := gauge(); g != "0" {
		t.Fatalf("recovered gauge = %s, want 0", g)
	}
}
