package core

import (
	"errors"

	"vaq/internal/bundle"
	"vaq/internal/diag"
	"vaq/internal/history"
	"vaq/internal/trace"
	"vaq/internal/workload"
)

// EnableFlightRecorder arms an incident flight recorder on the index: a
// background goroutine that keeps a windowed ring of metric snapshots and,
// on any alert breach edge (vaq.drift, vaq.slo.*) or a manual Trigger,
// freezes the recent context — metrics, alert history, query traces,
// sampled workload, the IndexReport, runtime stats — into a replayable
// incident bundle under cfg.Dir. name is the identity stamped into each
// bundle's provenance (use the name the index is published under).
//
// When no workload capture is attached yet, a flight-recorder-shaped one
// is installed: a ring over the newest cfg.WorkloadRing sampled queries at
// cfg.WorkloadSampleRate, so bundles always carry a replayable .vaqwl. An
// existing capture (EnableCapture) is reused untouched.
//
// Errors if metrics are disabled (there is no alert bus to subscribe to)
// or a recorder is already armed. The caller owns the returned recorder's
// lifecycle only through DisableFlightRecorder; the query path never
// blocks on it.
func (ix *Index) EnableFlightRecorder(name string, cfg bundle.Config) (*bundle.Recorder, error) {
	if ix.metrics == nil {
		return nil, errors.New("vaq: flight recorder requires metrics (Config.DisableMetrics is set)")
	}
	if ix.flight.Load() != nil {
		return nil, errors.New("vaq: flight recorder already armed")
	}
	if ix.capture.Load() == nil {
		ix.EnableCapture(workload.Config{
			SampleRate: cfg.WorkloadSampleRate,
			MaxRecords: cfg.WorkloadRing,
			Ring:       true,
		})
	}
	rec, err := bundle.New(cfg, bundle.Info{
		Name:        name,
		Fingerprint: ix.ConfigFingerprint(),
	}, bundle.Hooks{
		Metrics: ix.metrics,
		Alerts:  ix.metrics.Alerts(),
		Tracer:  func() *trace.Tracer { return ix.tracer.Load() },
		Workload: func() *workload.Log {
			return ix.capture.Load().Snapshot()
		},
		Reports: func() []*diag.Report { return []*diag.Report{ix.Diagnose()} },
		History: func() *history.Dump {
			if c := ix.hist.Load(); c != nil {
				return c.Dump()
			}
			return nil // recorder falls back to its own sampler
		},
	})
	if err != nil {
		return nil, err
	}
	if !ix.flight.CompareAndSwap(nil, rec) {
		rec.Close() //nolint:errcheck // racing arm loses; nothing written yet
		return nil, errors.New("vaq: flight recorder already armed")
	}
	return rec, nil
}

// DisableFlightRecorder disarms the flight recorder, flushing any pending
// alert-triggered bundles first, and returns the last write error. No-op
// when none is armed. The workload capture (whether pre-existing or
// installed by EnableFlightRecorder) stays attached.
func (ix *Index) DisableFlightRecorder() error {
	rec := ix.flight.Swap(nil)
	return rec.Close()
}

// FlightRecorder returns the armed recorder, or nil.
func (ix *Index) FlightRecorder() *bundle.Recorder { return ix.flight.Load() }
