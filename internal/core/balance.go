package core

// partialBalance computes the paper's partial importance balancing
// permutation (§III-C "Partial Subspace Importance Balancing";
// Algorithm 2 lines 2-9, generalized to multiple rounds as the text
// describes).
//
// Starting from each source subspace r, its first PC stays in place and its
// j-th best PC (j = 1, 2, ...) is swapped with the currently-worst
// unclaimed PC of subspace r+j — but only while the swap preserves the
// global descending ordering of subspace variances. Swaps that would break
// the ordering are reverted and the round for that source subspace stops.
//
// ratios must be sorted descending; lengths defines the subspace layout.
// The returned perm maps new dimension position -> original position; it
// applies to the eigenvalue vector and the PCA component columns alike.
func partialBalance(ratios []float64, lengths []int) []int {
	d := len(ratios)
	m := len(lengths)
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	if m < 2 {
		return perm
	}
	work := append([]float64(nil), ratios...)
	offsets := make([]int, m)
	off := 0
	for i, l := range lengths {
		offsets[i] = off
		off += l
	}
	sums := subspaceVariancesOf(work, offsets, lengths)
	// claimed[t] counts how many tail positions of subspace t have already
	// been used as swap targets ("worst", then "second worst", ...).
	claimed := make([]int, m)

	subspaceOf := func(pos int) int {
		for s := m - 1; s >= 0; s-- {
			if pos >= offsets[s] {
				return s
			}
		}
		return 0
	}
	trySwap := func(a, b int) bool {
		sa, sb := subspaceOf(a), subspaceOf(b)
		if sa == sb {
			return false
		}
		delta := work[b] - work[a]
		newSa := sums[sa] + delta
		newSb := sums[sb] - delta
		// Check the global ordering with the two updated sums.
		prevOK := func(s int, v float64) bool {
			if s > 0 {
				prev := sums[s-1]
				if s-1 == sa {
					prev = newSa
				} else if s-1 == sb {
					prev = newSb
				}
				if v > prev+1e-15 {
					return false
				}
			}
			if s < m-1 {
				next := sums[s+1]
				if s+1 == sa {
					next = newSa
				} else if s+1 == sb {
					next = newSb
				}
				if v < next-1e-15 {
					return false
				}
			}
			return true
		}
		if !prevOK(sa, newSa) || !prevOK(sb, newSb) {
			return false
		}
		work[a], work[b] = work[b], work[a]
		perm[a], perm[b] = perm[b], perm[a]
		sums[sa] = newSa
		sums[sb] = newSb
		return true
	}

	for r := 0; r < m-1; r++ {
		// j = 1: the second-best PC of subspace r (its first stays put).
		for j := 1; j < lengths[r]; j++ {
			t := r + j
			if t >= m {
				break
			}
			src := offsets[r] + j
			dst := offsets[t] + lengths[t] - 1 - claimed[t]
			if dst <= offsets[t] {
				// Never displace the target subspace's best PC.
				continue
			}
			if !trySwap(src, dst) {
				// Paper pseudocode: revert and stop this round.
				break
			}
			claimed[t]++
		}
	}
	return perm
}

func subspaceVariancesOf(vals []float64, offsets, lengths []int) []float64 {
	out := make([]float64, len(lengths))
	for i := range lengths {
		for j := offsets[i]; j < offsets[i]+lengths[i]; j++ {
			out[i] += vals[j]
		}
	}
	return out
}

// applyPermutationFloat64 returns vals reordered so that out[i] =
// vals[perm[i]].
func applyPermutationFloat64(vals []float64, perm []int) []float64 {
	out := make([]float64, len(vals))
	for i, p := range perm {
		out[i] = vals[p]
	}
	return out
}
