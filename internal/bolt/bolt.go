// Package bolt reimplements the Bolt baseline (Blalock & Guttag, KDD'17;
// paper §II-C "Accelerations for PQ methods") in a hardware-oblivious way:
// aggressively small 4-bit dictionaries (16 centroids per subspace), codes
// packed two-per-byte, and query lookup tables quantized to uint8 so the
// scan touches tiny tables and accumulates integers.
//
// Without SIMD the absolute speed differs from the original, but the two
// properties the paper's comparison measures are preserved: the scan is
// substantially faster per code than a float PQ scan (small LUTs, integer
// adds), and accuracy drops because both the dictionaries and the lookup
// tables are low precision (Figures 1 and 8).
package bolt

import (
	"fmt"

	"vaq/internal/quantizer"
	"vaq/internal/vec"
)

// Index is a built Bolt index.
type Index struct {
	cb     *quantizer.Codebooks
	packed []byte // n * m/2 bytes, two 4-bit codes per byte
	n      int
	m      int
	dim    int
}

// Config configures Build.
type Config struct {
	// Budget is the total bits per vector; Bolt always uses 4 bits per
	// subspace, so the subspace count is Budget/4.
	Budget int
	Train  quantizer.TrainConfig
}

// Build trains 4-bit dictionaries on train and packs codes for data.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if cfg.Budget < 4 || cfg.Budget%4 != 0 {
		return nil, fmt.Errorf("bolt: budget %d must be a positive multiple of 4", cfg.Budget)
	}
	m := cfg.Budget / 4
	if m%2 != 0 {
		return nil, fmt.Errorf("bolt: subspace count %d must be even for byte packing", m)
	}
	if m > train.Cols {
		return nil, fmt.Errorf("bolt: %d subspaces exceed %d dimensions", m, train.Cols)
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("bolt: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	sub, err := quantizer.UniformSubspaces(train.Cols, m)
	if err != nil {
		return nil, err
	}
	bits := make([]int, m)
	for i := range bits {
		bits[i] = 4
	}
	cb, err := quantizer.TrainCodebooks(train, sub, bits, cfg.Train)
	if err != nil {
		return nil, err
	}
	codes, err := cb.Encode(data, true)
	if err != nil {
		return nil, err
	}
	packed := make([]byte, data.Rows*m/2)
	for i := 0; i < data.Rows; i++ {
		row := codes.Row(i)
		base := i * m / 2
		for s := 0; s < m; s += 2 {
			packed[base+s/2] = byte(row[s])<<4 | byte(row[s+1])
		}
	}
	return &Index{cb: cb, packed: packed, n: data.Rows, m: m, dim: train.Cols}, nil
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.n }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// quantizedLUT is the uint8 lookup table for one query: 16 entries per
// subspace plus the affine parameters that map integer sums back to
// (approximate) squared distances.
type quantizedLUT struct {
	table  []uint8 // m * 16
	offset float32 // sum of per-subspace minima
	scale  float32 // quantization step (distance units per integer unit)
}

// buildQuantizedLUT computes the float ADC tables and quantizes them with a
// shared scale so per-subspace integer entries are summable.
func (ix *Index) buildQuantizedLUT(q []float32) *quantizedLUT {
	m := ix.m
	lut := ix.cb.BuildLUT(q)
	out := &quantizedLUT{table: make([]uint8, m*16)}
	// Shared scale: the largest per-subspace range defines the step.
	var maxRange float32
	mins := make([]float32, m)
	for s := 0; s < m; s++ {
		t := lut.Table(s)
		mn, mx := t[0], t[0]
		for _, v := range t[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[s] = mn
		if mx-mn > maxRange {
			maxRange = mx - mn
		}
		out.offset += mn
	}
	if maxRange == 0 {
		maxRange = 1
	}
	step := maxRange / 255
	out.scale = step
	inv := 1 / step
	for s := 0; s < m; s++ {
		t := lut.Table(s)
		for c, v := range t {
			qv := (v - mins[s]) * inv
			if qv > 255 {
				qv = 255
			}
			out.table[s*16+c] = uint8(qv)
		}
	}
	return out
}

// Search returns the approximate k nearest neighbors. Distances are
// de-quantized back to (approximate) squared Euclidean values.
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("bolt: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("bolt: k must be >= 1, got %d", k)
	}
	qlut := ix.buildQuantizedLUT(q)
	tk := vec.NewTopK(k)
	half := ix.m / 2
	table := qlut.table
	for i := 0; i < ix.n; i++ {
		base := i * half
		var acc uint32
		for b := 0; b < half; b++ {
			pb := ix.packed[base+b]
			s := b * 2
			acc += uint32(table[s*16+int(pb>>4)])
			acc += uint32(table[(s+1)*16+int(pb&0x0f)])
		}
		tk.Push(i, float32(acc))
	}
	res := tk.Results()
	for i := range res {
		res[i].Dist = res[i].Dist*qlut.scale + qlut.offset
	}
	return res, nil
}
