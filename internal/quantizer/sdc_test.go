package quantizer

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func TestSDCTableSymmetryAndDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clusteredData(rng, 300, 8)
	sub, _ := UniformSubspaces(8, 4)
	cb, _ := TrainCodebooks(x, sub, []int{3, 4, 2, 3}, TrainConfig{Seed: 1})
	table := cb.BuildSDCTable()
	for s := 0; s < 4; s++ {
		k := cb.Books[s].Rows
		for a := 0; a < k; a++ {
			codeA := make([]uint16, 4)
			codeB := make([]uint16, 4)
			codeA[s] = uint16(a)
			if table.Distance(codeA, codeA) < 0 {
				t.Fatal("negative self distance")
			}
			for b := 0; b < k; b++ {
				codeB[s] = uint16(b)
				// Isolate subspace s by keeping others at code 0.
				dAB := table.Distance(codeA, codeB)
				dBA := table.Distance(codeB, codeA)
				if dAB != dBA {
					t.Fatalf("asymmetric SDC at s=%d (%d,%d): %v vs %v", s, a, b, dAB, dBA)
				}
			}
		}
	}
	// Diagonal entries are zero: identical codes have distance 0.
	code := []uint16{1, 2, 1, 0}
	if d := table.Distance(code, code); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestSDCMatchesExplicitReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clusteredData(rng, 400, 8)
	sub, _ := UniformSubspaces(8, 4)
	cb, _ := TrainCodebooks(x, sub, []int{4, 4, 4, 4}, TrainConfig{Seed: 2})
	codes, _ := cb.Encode(x, false)
	table := cb.BuildSDCTable()
	bufA := make([]float32, 8)
	bufB := make([]float32, 8)
	for trial := 0; trial < 30; trial++ {
		i, j := rng.Intn(400), rng.Intn(400)
		cb.Decode(codes.Row(i), bufA)
		cb.Decode(codes.Row(j), bufB)
		want := vec.SquaredL2(bufA, bufB)
		got := table.Distance(codes.Row(i), codes.Row(j))
		if math.Abs(float64(got-want)) > 1e-4*(1+float64(want)) {
			t.Fatalf("SDC %v != reconstruction distance %v", got, want)
		}
	}
}

func TestSearchSDC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clusteredData(rng, 800, 16)
	pq, err := TrainPQ(x, x, PQConfig{M: 4, BitsPerSubspace: 6, Train: TrainConfig{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	table := pq.Codebooks().BuildSDCTable()
	// Self query should find itself at distance 0 (identical code).
	hits := 0
	for trial := 0; trial < 20; trial++ {
		qi := rng.Intn(800)
		res, err := pq.SearchSDC(x.Row(qi), 10, table)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 16 {
		t.Fatalf("SDC self-recall %d/20", hits)
	}
	// Table built on demand when nil.
	if _, err := pq.SearchSDC(x.Row(0), 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.SearchSDC(make([]float32, 3), 5, table); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := pq.SearchSDC(x.Row(0), 0, table); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestSDCVsADCAccuracy(t *testing.T) {
	// SDC quantizes the query too, so its distances are no better (and
	// usually worse) approximations than ADC; both must still retrieve
	// overlapping neighbor sets.
	rng := rand.New(rand.NewSource(4))
	x := clusteredData(rng, 600, 8)
	pq, _ := TrainPQ(x, x, PQConfig{M: 4, BitsPerSubspace: 5, Train: TrainConfig{Seed: 4}})
	table := pq.Codebooks().BuildSDCTable()
	overlap := 0
	total := 0
	for trial := 0; trial < 10; trial++ {
		q := append([]float32(nil), x.Row(rng.Intn(600))...)
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		adc, _ := pq.Search(q, 10)
		sdc, _ := pq.SearchSDC(q, 10, table)
		set := map[int]bool{}
		for _, r := range adc {
			set[r.ID] = true
		}
		for _, r := range sdc {
			total++
			if set[r.ID] {
				overlap++
			}
		}
	}
	if frac := float64(overlap) / float64(total); frac < 0.5 {
		t.Fatalf("SDC/ADC overlap %v too low", frac)
	}
}

func TestScanSDCErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := clusteredData(rng, 100, 4)
	sub, _ := UniformSubspaces(4, 2)
	cb, _ := TrainCodebooks(x, sub, []int{2, 2}, TrainConfig{Seed: 5})
	codes, _ := cb.Encode(x, false)
	table := cb.BuildSDCTable()
	if _, err := ScanSDC(codes, table, []uint16{0}, 3); err == nil {
		t.Fatal("wrong query width must fail")
	}
}
