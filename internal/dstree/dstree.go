// Package dstree implements a DSTree-style index (Wang et al.; paper §II-C
// and Figure 11): a binary tree over series summarized by per-segment
// means and standard deviations (the EAPCA representation). Nodes split on
// the segment statistic that best separates their members, and search
// prunes subtrees with the EAPCA lower bound
//
//	||q - x||² >= Σ_seg len·((mean gap)² + (std gap)²),
//
// which holds because projecting a segment onto the constant vector bounds
// the mean term and the reverse triangle inequality on the residual bounds
// the std term.
package dstree

import (
	"container/heap"
	"fmt"
	"math"

	"vaq/internal/vec"
)

// Config controls Build.
type Config struct {
	// Segments is the number of equal-width segments (default 8).
	Segments int
	// LeafCapacity is the split threshold (default 100).
	LeafCapacity int
	// MaxDepth bounds the tree height (default 24).
	MaxDepth int
}

// segStats is the per-segment (mean, std) summary of one series.
type segStats struct {
	mean, std float32
}

type node struct {
	members []int32 // leaf only
	// Per-segment [min,max] envelopes of member means and stds.
	minMean, maxMean []float32
	minStd, maxStd   []float32
	// Split rule (internal nodes).
	splitSeg  int
	onStd     bool
	threshold float32
	children  [2]*node
}

// Index is a built DSTree.
type Index struct {
	data     *vec.Matrix
	segments int
	segLen   []int
	stats    []segStats // n x segments
	root     *node
	leafCap  int
	maxDepth int
	n        int
}

// Build constructs the tree.
func Build(data *vec.Matrix, cfg Config) (*Index, error) {
	if data.Rows == 0 {
		return nil, fmt.Errorf("dstree: empty data")
	}
	if cfg.Segments <= 0 {
		cfg.Segments = 8
	}
	if cfg.Segments > data.Cols {
		return nil, fmt.Errorf("dstree: Segments=%d exceeds length %d", cfg.Segments, data.Cols)
	}
	if cfg.LeafCapacity <= 0 {
		cfg.LeafCapacity = 100
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 24
	}
	ix := &Index{
		data:     data,
		segments: cfg.Segments,
		leafCap:  cfg.LeafCapacity,
		maxDepth: cfg.MaxDepth,
		n:        data.Rows,
	}
	ix.segLen = make([]int, cfg.Segments)
	for s := 0; s < cfg.Segments; s++ {
		lo := s * data.Cols / cfg.Segments
		hi := (s + 1) * data.Cols / cfg.Segments
		ix.segLen[s] = hi - lo
	}
	ix.stats = make([]segStats, data.Rows*cfg.Segments)
	for i := 0; i < data.Rows; i++ {
		ix.computeStats(data.Row(i), ix.stats[i*cfg.Segments:(i+1)*cfg.Segments])
	}
	all := make([]int32, data.Rows)
	for i := range all {
		all[i] = int32(i)
	}
	ix.root = ix.buildNode(all, 0)
	return ix, nil
}

func (ix *Index) computeStats(x []float32, out []segStats) {
	d := len(x)
	w := ix.segments
	for s := 0; s < w; s++ {
		lo := s * d / w
		hi := (s + 1) * d / w
		var sum float64
		for j := lo; j < hi; j++ {
			sum += float64(x[j])
		}
		l := float64(hi - lo)
		mean := sum / l
		var ss float64
		for j := lo; j < hi; j++ {
			t := float64(x[j]) - mean
			ss += t * t
		}
		out[s] = segStats{mean: float32(mean), std: float32(math.Sqrt(ss / l))}
	}
}

func (ix *Index) statOf(id int32, s int) segStats {
	return ix.stats[int(id)*ix.segments+s]
}

// buildNode recursively splits members until the leaf capacity or depth
// limit is reached.
func (ix *Index) buildNode(members []int32, depth int) *node {
	nd := &node{
		minMean: make([]float32, ix.segments),
		maxMean: make([]float32, ix.segments),
		minStd:  make([]float32, ix.segments),
		maxStd:  make([]float32, ix.segments),
	}
	for s := 0; s < ix.segments; s++ {
		nd.minMean[s], nd.maxMean[s] = float32(math.Inf(1)), float32(math.Inf(-1))
		nd.minStd[s], nd.maxStd[s] = float32(math.Inf(1)), float32(math.Inf(-1))
	}
	for _, id := range members {
		for s := 0; s < ix.segments; s++ {
			st := ix.statOf(id, s)
			if st.mean < nd.minMean[s] {
				nd.minMean[s] = st.mean
			}
			if st.mean > nd.maxMean[s] {
				nd.maxMean[s] = st.mean
			}
			if st.std < nd.minStd[s] {
				nd.minStd[s] = st.std
			}
			if st.std > nd.maxStd[s] {
				nd.maxStd[s] = st.std
			}
		}
	}
	if len(members) <= ix.leafCap || depth >= ix.maxDepth {
		nd.members = members
		return nd
	}
	// Choose the split with the widest length-weighted envelope: wide
	// envelopes hurt the lower bound the most, so splitting them helps.
	bestSeg, bestStd, bestScore := -1, false, float32(-1)
	for s := 0; s < ix.segments; s++ {
		l := float32(ix.segLen[s])
		if sc := (nd.maxMean[s] - nd.minMean[s]) * l; sc > bestScore {
			bestScore, bestSeg, bestStd = sc, s, false
		}
		if sc := (nd.maxStd[s] - nd.minStd[s]) * l; sc > bestScore {
			bestScore, bestSeg, bestStd = sc, s, true
		}
	}
	if bestSeg < 0 || bestScore <= 0 {
		nd.members = members
		return nd
	}
	// Split at the midpoint of the envelope.
	var threshold float32
	if bestStd {
		threshold = (nd.minStd[bestSeg] + nd.maxStd[bestSeg]) / 2
	} else {
		threshold = (nd.minMean[bestSeg] + nd.maxMean[bestSeg]) / 2
	}
	var left, right []int32
	for _, id := range members {
		st := ix.statOf(id, bestSeg)
		v := st.mean
		if bestStd {
			v = st.std
		}
		if v < threshold {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		nd.members = members // degenerate split; keep as leaf
		return nd
	}
	nd.splitSeg = bestSeg
	nd.onStd = bestStd
	nd.threshold = threshold
	nd.children[0] = ix.buildNode(left, depth+1)
	nd.children[1] = ix.buildNode(right, depth+1)
	return nd
}

// Len reports the number of indexed series.
func (ix *Index) Len() int { return ix.n }

// lowerBoundSq computes the squared EAPCA bound between the query's
// per-segment stats and a node's envelopes.
func (ix *Index) lowerBoundSq(qStats []segStats, nd *node) float32 {
	var sum float64
	for s := 0; s < ix.segments; s++ {
		var meanGap, stdGap float64
		q := qStats[s]
		if q.mean < nd.minMean[s] {
			meanGap = float64(nd.minMean[s] - q.mean)
		} else if q.mean > nd.maxMean[s] {
			meanGap = float64(q.mean - nd.maxMean[s])
		}
		if q.std < nd.minStd[s] {
			stdGap = float64(nd.minStd[s] - q.std)
		} else if q.std > nd.maxStd[s] {
			stdGap = float64(q.std - nd.maxStd[s])
		}
		sum += float64(ix.segLen[s]) * (meanGap*meanGap + stdGap*stdGap)
	}
	return float32(sum)
}

type leafRef struct {
	nd *node
	lb float32
}

type lbHeap []leafRef

func (h lbHeap) Len() int            { return len(h) }
func (h lbHeap) Less(i, j int) bool  { return h[i].lb < h[j].lb }
func (h lbHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lbHeap) Push(x interface{}) { *h = append(*h, x.(leafRef)) }
func (h *lbHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (ix *Index) checkQuery(q []float32, k int) error {
	if len(q) != ix.data.Cols {
		return fmt.Errorf("dstree: query length %d, index length %d", len(q), ix.data.Cols)
	}
	if k < 1 {
		return fmt.Errorf("dstree: k must be >= 1, got %d", k)
	}
	return nil
}

// SearchApprox visits the visitLeaves most promising leaves by lower bound
// and ranks members by true distance (squared Euclidean).
func (ix *Index) SearchApprox(q []float32, k, visitLeaves int) ([]vec.Neighbor, error) {
	if err := ix.checkQuery(q, k); err != nil {
		return nil, err
	}
	if visitLeaves < 1 {
		visitLeaves = 1
	}
	qStats := make([]segStats, ix.segments)
	ix.computeStats(q, qStats)
	h := &lbHeap{}
	heap.Push(h, leafRef{ix.root, ix.lowerBoundSq(qStats, ix.root)})
	tk := vec.NewTopK(k)
	visited := 0
	for h.Len() > 0 && visited < visitLeaves {
		lf := heap.Pop(h).(leafRef)
		if lf.nd.children[0] != nil {
			for _, ch := range lf.nd.children {
				heap.Push(h, leafRef{ch, ix.lowerBoundSq(qStats, ch)})
			}
			continue
		}
		visited++
		for _, id := range lf.nd.members {
			tk.Push(int(id), vec.SquaredL2(q, ix.data.Row(int(id))))
		}
	}
	return tk.Results(), nil
}

// SearchEpsilon runs best-first search with (1+epsilon)-relaxed pruning;
// epsilon = 0 is exact.
func (ix *Index) SearchEpsilon(q []float32, k int, epsilon float64) ([]vec.Neighbor, error) {
	if err := ix.checkQuery(q, k); err != nil {
		return nil, err
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("dstree: epsilon must be >= 0, got %v", epsilon)
	}
	qStats := make([]segStats, ix.segments)
	ix.computeStats(q, qStats)
	h := &lbHeap{}
	heap.Push(h, leafRef{ix.root, ix.lowerBoundSq(qStats, ix.root)})
	tk := vec.NewTopK(k)
	relax := float32((1 + epsilon) * (1 + epsilon))
	for h.Len() > 0 {
		lf := heap.Pop(h).(leafRef)
		if tk.Full() && lf.lb*relax >= tk.Threshold() {
			break
		}
		if lf.nd.children[0] != nil {
			for _, ch := range lf.nd.children {
				heap.Push(h, leafRef{ch, ix.lowerBoundSq(qStats, ch)})
			}
			continue
		}
		for _, id := range lf.nd.members {
			tk.Push(int(id), vec.SquaredL2(q, ix.data.Row(int(id))))
		}
	}
	return tk.Results(), nil
}

// LeafCount reports the number of leaves.
func (ix *Index) LeafCount() int {
	count := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.children[0] == nil {
			count++
			return
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	walk(ix.root)
	return count
}
