package vaq

import (
	"fmt"

	"vaq/internal/workload"
)

// CaptureConfig tunes workload capture (sample rate, buffer bound; see the
// field docs in internal/workload.Config). Fingerprint and Dim are filled
// in by EnableCapture — leave them zero.
type CaptureConfig = workload.Config

// WorkloadCapture is a bounded lock-free buffer of sampled queries.
// Obtain one with Index.EnableCapture; Snapshot turns its contents into a
// serializable WorkloadLog.
type WorkloadCapture = workload.Capture

// WorkloadRecord is one captured query: the query vector, k, search
// options, the returned ids and distances, latency, and (when tracing is
// on) the trace sequence number linking it to its QueryTrace.
type WorkloadRecord = workload.Record

// WorkloadLog is a serializable set of captured queries plus the config
// fingerprint of the index that answered them. Save/LoadWorkloadLog use
// the versioned .vaqwl binary format documented in DESIGN.md.
type WorkloadLog = workload.Log

// ReplayThresholds gate a replay: minimum mean overlap@k, maximum result
// distance drift, maximum latency factor. Zero values disable each gate.
type ReplayThresholds = workload.Thresholds

// ReplayOptions tune a replay run (pacing, thresholds).
type ReplayOptions = workload.Options

// ReplayReport summarizes a replay: per-query overlap@k against the
// recorded results, distance drift, latency comparison, and any threshold
// violations (Passed reports whether there were none).
type ReplayReport = workload.Report

// ReplayQueryDiff is the per-query detail behind a ReplayReport.
type ReplayQueryDiff = workload.QueryDiff

// LoadWorkloadLog reads a .vaqwl workload log written by WorkloadLog.Save.
func LoadWorkloadLog(path string) (*WorkloadLog, error) {
	l, err := workload.LoadLog(path)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	return l, nil
}

// EnableCapture installs a workload capture buffer on the index and
// returns it. From the next query on, a deterministic sample of searches
// (every round(1/SampleRate)-th, like the recall estimator) records its
// query vector, options, results and latency into the buffer, bounded at
// MaxRecords. Capture is off by default; when off the query path pays one
// atomic pointer load, and sampling itself costs one atomic increment per
// query plus a copy only on sampled ones. Safe to call while queries are
// in flight.
func (ix *Index) EnableCapture(cfg CaptureConfig) *WorkloadCapture {
	return ix.inner.EnableCapture(cfg)
}

// DisableCapture detaches the capture buffer; records already stored stay
// readable through the WorkloadCapture EnableCapture returned.
func (ix *Index) DisableCapture() { ix.inner.DisableCapture() }

// Capture returns the active workload capture, or nil when capture is off.
func (ix *Index) Capture() *WorkloadCapture { return ix.inner.Capture() }

// ConfigFingerprint is a stable short hash of the search-relevant build
// configuration (the same scheme vaqbench stamps into -json summaries).
// Workload logs carry it so a replay can tell "same config rebuild" from
// "different index".
func (ix *Index) ConfigFingerprint() string { return ix.inner.ConfigFingerprint() }

// ReplayWorkload re-runs a captured workload log against this index and
// diffs the answers against the recorded ones: overlap@k, result distance
// drift, latency comparison. The report's Violations list (and Passed)
// reflect opt.Thresholds. Replaying a log against the index that captured
// it (or a deterministic same-config rebuild) yields 100% overlap and zero
// drift; a drop measures how far the new index diverges on real traffic.
func (ix *Index) ReplayWorkload(l *WorkloadLog, opt ReplayOptions) (*ReplayReport, []ReplayQueryDiff, error) {
	rep, diffs, err := workload.Replay(l, ix.inner.ReplayRunner(), opt)
	if err != nil {
		return nil, nil, fmt.Errorf("vaq: %w", err)
	}
	return rep, diffs, nil
}
