package vaq

import (
	"math/rand"
	"testing"
)

func TestPublicSearchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := genData(rng, 1500, 16)
	ix, err := Build(data, Config{NumSubspaces: 4, Budget: 32, Seed: 71, TIClusters: 30})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	if _, err := s.Search(data[10], 5, SearchOptions{Mode: ModeTIEA, VisitFrac: 0.2}); err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.ClustersVisited != 6 {
		t.Fatalf("expected 6 of 30 clusters visited, got %+v", st)
	}
	if st.CodesConsidered <= 0 || st.CodesConsidered >= 1500 {
		t.Fatalf("TI should restrict the considered set: %+v", st)
	}
	if st.Lookups <= 0 {
		t.Fatalf("no lookups recorded: %+v", st)
	}
	// A heap scan resets the stats to the exhaustive profile.
	if _, err := s.Search(data[10], 5, SearchOptions{Mode: ModeHeap}); err != nil {
		t.Fatal(err)
	}
	st = s.LastStats()
	if st.CodesConsidered != 1500 || st.CodesSkippedTI != 0 {
		t.Fatalf("heap stats wrong: %+v", st)
	}
}
