package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"os"

	"vaq/internal/core"
	"vaq/internal/metrics"
)

// Sharded container format ("VAQS", version 1): a thin envelope around
// one core v2 stream per shard.
//
//	[4]byte  magic "VAQS"
//	u64      container version (1)
//	u64      shard count S
//	u64      assignment policy
//	u64      next global id
//	S x:
//	  u64    id-mapping length
//	  u32... local-to-global id mapping
//	  u64    core stream byte length
//	  []byte core v2 stream (exactly that many bytes)
//
// Each shard's stream is length-prefixed because core.Read buffers its
// reader and may not consume its segment exactly; the reader side wraps
// each segment in an io.LimitReader and drains the remainder so the next
// shard always starts aligned. With S=1 the payload after the envelope is
// byte-identical to the unsharded index's WriteTo output.
const (
	shardMagic            = "VAQS"
	shardFormatVersion    = 1
	maxReasonableShards   = 1 << 16
	maxReasonableIDSlices = 1 << 31
)

// WriteTo serializes the sharded index. It holds every shard's Add lock
// for the duration so the id mappings and encoded codes form one
// consistent snapshot even under concurrent ingest.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	for _, st := range x.states {
		st.addMu.Lock()
	}
	defer func() {
		for _, st := range x.states {
			st.addMu.Unlock()
		}
	}()
	bw := bufio.NewWriter(w)
	var n int64
	wr := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(shardMagic); err != nil {
		return n, err
	}
	n += int64(len(shardMagic))
	for _, v := range []uint64{shardFormatVersion, uint64(len(x.states)), uint64(x.opts.Policy), uint64(x.nextID.Load())} {
		if err := wr(v); err != nil {
			return n, err
		}
	}
	var buf bytes.Buffer
	for si, st := range x.states {
		ids := *st.ids.Load()
		if err := wr(uint64(len(ids))); err != nil {
			return n, err
		}
		if len(ids) > 0 {
			if err := wr(ids); err != nil {
				return n, err
			}
		}
		buf.Reset()
		if _, err := st.ix.WriteTo(&buf); err != nil {
			return n, fmt.Errorf("shard %d: %w", si, err)
		}
		if err := wr(uint64(buf.Len())); err != nil {
			return n, err
		}
		nn, err := bw.Write(buf.Bytes())
		n += int64(nn)
		if err != nil {
			return n, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return n, bw.Flush()
}

// Read deserializes a sharded index written by WriteTo. Like the core
// reader, loaded indexes carry fresh telemetry registries and no
// runtime-only configuration (SLOs, capture, recall sampling).
func Read(r io.Reader) (*Index, error) {
	return ReadLogged(r, nil)
}

// ReadLogged is Read with a structured logger attached to the loaded
// index (used for merged-registry SLO breach events configured later).
func ReadLogged(r io.Reader, logger *slog.Logger) (*Index, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("shard: reading magic: %w", err)
	}
	if string(magic[:]) != shardMagic {
		return nil, fmt.Errorf("shard: bad magic %q (want %q)", magic[:], shardMagic)
	}
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var version, shards, policy, nextID uint64
	for _, p := range []*uint64{&version, &shards, &policy, &nextID} {
		if err := rd(p); err != nil {
			return nil, fmt.Errorf("shard: reading header: %w", err)
		}
	}
	if version != shardFormatVersion {
		return nil, fmt.Errorf("shard: unsupported container version %d (want %d)", version, shardFormatVersion)
	}
	if shards == 0 || shards > maxReasonableShards {
		return nil, fmt.Errorf("shard: implausible shard count %d", shards)
	}
	if policy != uint64(PolicyRoundRobin) && policy != uint64(PolicyLeastLoaded) {
		return nil, fmt.Errorf("shard: unknown policy %d", policy)
	}
	x := &Index{
		opts:   Options{Shards: int(shards), Policy: Policy(policy)},
		states: make([]*shardState, shards),
		logger: logger,
	}
	x.nextID.Store(int64(nextID))
	for si := range x.states {
		var idLen uint64
		if err := rd(&idLen); err != nil {
			return nil, fmt.Errorf("shard %d: reading id count: %w", si, err)
		}
		if idLen > maxReasonableIDSlices {
			return nil, fmt.Errorf("shard %d: implausible id count %d", si, idLen)
		}
		ids, err := readIDs(r, idLen)
		if err != nil {
			return nil, fmt.Errorf("shard %d: reading id mapping: %w", si, err)
		}
		var blen uint64
		if err := rd(&blen); err != nil {
			return nil, fmt.Errorf("shard %d: reading stream length: %w", si, err)
		}
		lr := io.LimitReader(r, int64(blen))
		ix, err := core.ReadLogged(lr, logger)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		// core.Read buffers: drain whatever of this shard's segment its
		// bufio did not pull so the next segment starts aligned.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("shard %d: draining stream: %w", si, err)
		}
		if ix.Len() != int(idLen) {
			return nil, fmt.Errorf("shard %d: id mapping has %d entries, index has %d vectors", si, idLen, ix.Len())
		}
		st := &shardState{ix: ix}
		st.ids.Store(&ids)
		if !monotone(ids) {
			st.unordered.Store(true)
		}
		x.states[si] = st
	}
	x.dim = x.states[0].ix.Dim()
	for si, st := range x.states[1:] {
		if st.ix.Dim() != x.dim {
			return nil, fmt.Errorf("shard %d: dim %d != shard 0 dim %d", si+1, st.ix.Dim(), x.dim)
		}
	}
	m := x.states[0].ix.Codebooks().Sub.M()
	x.reg = metrics.NewSized(m+1, m)
	return x, nil
}

// readIDs reads n little-endian int32 ids in bounded chunks, so a corrupt
// or hostile length field cannot force a huge up-front allocation: memory
// grows only as fast as the stream actually delivers bytes, and a short
// stream fails at the first missing chunk.
func readIDs(r io.Reader, n uint64) ([]int32, error) {
	const chunk = 1 << 20 // entries per read (4 MiB of trust at a time)
	c := n
	if c > chunk {
		c = chunk
	}
	ids := make([]int32, 0, c)
	buf := make([]int32, c)
	for n > 0 {
		c = n
		if c > chunk {
			c = chunk
		}
		b := buf[:c]
		if err := binary.Read(r, binary.LittleEndian, b); err != nil {
			return nil, err
		}
		ids = append(ids, b...)
		n -= c
	}
	return ids, nil
}

// monotone reports whether the id mapping is strictly increasing (the
// build-time stripe always is; interleaved concurrent Adds may not be).
func monotone(ids []int32) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

// Save writes the sharded index to path (atomic rename).
func (x *Index) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := x.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a sharded index from path.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	x, err := ReadLogged(f, nil)
	if err != nil {
		return nil, fmt.Errorf("shard: loading %s: %w", path, err)
	}
	return x, nil
}
