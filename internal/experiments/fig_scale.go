package experiments

import (
	"fmt"
	"io"

	"vaq/internal/core"
)

// RunScale measures how build and query costs grow with the dataset size
// (the paper's §V-E motivation for data skipping: exhaustive scans grow
// linearly with n, VAQ's TI+EA scan grows sublinearly in visited work).
// VAQ (visit 10%) and PQ are built at n/4, n/2 and n on the SALD stand-in.
func RunScale(w io.Writer, s Scale) error {
	const k = 100
	sizes := []int{s.N / 4, s.N / 2, s.N}
	fmt.Fprintf(w, "== SALD scaling (256 bits, 32 subspaces, recall@%d) ==\n", k)
	fmt.Fprintf(w, "%8s %-10s %9s %12s %12s\n", "n", "method", "recall", "query(ms)", "build(s)")
	for _, n := range sizes {
		sub := s
		sub.N = n
		ds, gt, err := largeDataset("SALD", sub, k)
		if err != nil {
			return err
		}
		vaqM, err := buildVAQ("VAQ-0.1", ds, vaqConfig(256, 32, s.Seed),
			core.SearchOptions{Mode: core.ModeTIEA, VisitFrac: 0.10})
		if err != nil {
			return err
		}
		pqM, err := buildPQ("PQ", ds, 32, 8, s.Seed)
		if err != nil {
			return err
		}
		for _, m := range []*method{vaqM, pqM} {
			row, err := evaluate(m, ds.Queries, gt, k)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8d %-10s %9.4f %12.4f %12.2f\n",
				n, row.name, row.recall, row.avgQuerySec*1000, row.buildSeconds)
		}
	}
	return nil
}
