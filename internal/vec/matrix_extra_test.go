package vec

import "testing"

func TestSelectRowsCopy(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	s := m.SelectRowsCopy([]int{2, 0})
	want, _ := FromRows([][]float32{{5, 6}, {1, 2}})
	if !s.Equal(want) {
		t.Fatalf("got %v", s.Data)
	}
	// Copy semantics: mutating the selection must not touch the source.
	s.Set(0, 0, 99)
	if m.At(2, 0) == 99 {
		t.Fatal("SelectRowsCopy must copy")
	}
	empty := m.SelectRowsCopy(nil)
	if empty.Rows != 0 || empty.Cols != 2 {
		t.Fatalf("empty selection %dx%d", empty.Rows, empty.Cols)
	}
}

func TestSelectColumnsRange(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}})
	s := m.SelectColumnsRange(1, 3)
	want, _ := FromRows([][]float32{{2, 3}, {6, 7}})
	if !s.Equal(want) {
		t.Fatalf("got %v", s.Data)
	}
	s.Set(0, 0, 99)
	if m.At(0, 1) == 99 {
		t.Fatal("SelectColumnsRange must copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range must panic")
		}
	}()
	m.SelectColumnsRange(2, 5)
}

func TestSliceRowsPanics(t *testing.T) {
	m := NewMatrix(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad slice must panic")
		}
	}()
	m.SliceRows(2, 1)
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims must panic")
		}
	}()
	NewMatrix(-1, 2)
}
