package hnsw

import (
	"math/rand"
	"testing"

	"vaq/internal/eval"
	"vaq/internal/vec"
)

func uniform(rng *rand.Rand, n, d int) *vec.Matrix {
	x := vec.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	return x
}

func TestBuildValidation(t *testing.T) {
	x := uniform(rand.New(rand.NewSource(1)), 10, 4)
	if _, err := Build(vec.NewMatrix(0, 4), Config{M: 8, EFConstruction: 100}); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := Build(x, Config{M: 1, EFConstruction: 100}); err == nil {
		t.Fatal("M=1 must fail")
	}
	if _, err := Build(x, Config{M: 8, EFConstruction: 4}); err == nil {
		t.Fatal("efC < M must fail")
	}
}

func TestExactOnSmallSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := uniform(rng, 200, 8)
	ix, err := Build(x, Config{M: 8, EFConstruction: 100, Seed: 2, Heuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 200 {
		t.Fatalf("len %d", ix.Len())
	}
	// With ef >= n the search is effectively exhaustive.
	for trial := 0; trial < 10; trial++ {
		qi := rng.Intn(200)
		res, err := ix.Search(x.Row(qi), 1, 200)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != qi || res[0].Dist != 0 {
			t.Fatalf("self search returned %v", res[0])
		}
	}
}

func TestRecallAgainstGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := uniform(rng, 3000, 16)
	queries := uniform(rng, 30, 16)
	ix, err := Build(x, Config{M: 12, EFConstruction: 150, Seed: 3, Heuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := eval.GroundTruth(x, queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]int, queries.Rows)
	for qi := 0; qi < queries.Rows; qi++ {
		res, err := ix.Search(queries.Row(qi), 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		results[qi] = eval.IDs(res)
	}
	recall := eval.Recall(results, gt, 10)
	if recall < 0.85 {
		t.Fatalf("HNSW recall@10 = %v, want >= 0.85", recall)
	}
}

func TestEFSearchTradesRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := uniform(rng, 2000, 12)
	queries := uniform(rng, 25, 12)
	ix, err := Build(x, Config{M: 8, EFConstruction: 100, Seed: 4, Heuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := eval.GroundTruth(x, queries, 10)
	recallAt := func(ef int) float64 {
		results := make([][]int, queries.Rows)
		for qi := 0; qi < queries.Rows; qi++ {
			res, _ := ix.Search(queries.Row(qi), 10, ef)
			results[qi] = eval.IDs(res)
		}
		return eval.Recall(results, gt, 10)
	}
	low, high := recallAt(10), recallAt(200)
	if high < low-0.02 {
		t.Fatalf("higher ef must not reduce recall: ef10=%v ef200=%v", low, high)
	}
	if high < 0.85 {
		t.Fatalf("ef=200 recall %v too low", high)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := uniform(rng, 50, 4)
	ix, err := Build(x, Config{M: 4, EFConstruction: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 3), 5, 10); err == nil {
		t.Fatal("bad dim must fail")
	}
	if _, err := ix.Search(x.Row(0), 0, 10); err == nil {
		t.Fatal("k=0 must fail")
	}
	// efSearch below k is raised silently.
	res, err := ix.Search(x.Row(0), 5, 1)
	if err != nil || len(res) != 5 {
		t.Fatalf("ef clamp: %v %v", res, err)
	}
}

func TestSingleElement(t *testing.T) {
	x := uniform(rand.New(rand.NewSource(6)), 1, 4)
	ix, err := Build(x, Config{M: 4, EFConstruction: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(x.Row(0), 3, 10)
	if err != nil || len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("single element: %v %v", res, err)
	}
}
