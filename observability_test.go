package vaq

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestObservabilityEndToEnd drives the full debug surface the way an
// operator would: build an index with recall sampling on, enable tracing,
// publish both, serve the debug mux, run traffic, and scrape every
// endpoint — Prometheus metrics (with attribution and recall), the
// human-readable trace dump, and the Chrome trace-event export.
func TestObservabilityEndToEnd(t *testing.T) {
	ix, data := metricsTestIndex(t, 1500, 16, Config{
		NumSubspaces: 8, Budget: 48, Seed: 11, RecallSampleRate: 0.5,
	})
	tr := ix.EnableTracing(TraceConfig{RingSize: 32, SlowThreshold: time.Nanosecond, Exemplars: 4})
	ix.PublishExpvar("vaq_e2e_index")
	PublishTrace("vaq_e2e_index", tr)
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := ix.SearchBatch(data[:64], 5, SearchOptions{}, 4); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return string(body), resp
	}

	// Prometheus exposition: totals, attribution and recall all present.
	body, resp := get("/debug/vaq/metrics?index=vaq_e2e_index")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		`vaq_queries_total{index="vaq_e2e_index"} 64`,
		`vaq_recall_samples_total{index="vaq_e2e_index"} 32`,
		"vaq_ea_abandon_depth_total{",
		"vaq_ti_skips_by_rank_total{",
		"vaq_query_latency_seconds_bucket{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}

	// Human-readable traces.
	body, _ = get("/debug/vaq/traces?name=vaq_e2e_index")
	if !strings.Contains(body, `tracer "vaq_e2e_index": 64 traces recorded`) ||
		!strings.Contains(body, SpanClusterScan) {
		t.Errorf("trace dump incomplete:\n%.600s", body)
	}

	// Slow-query exemplars (1ns threshold: everything qualifies).
	body, _ = get("/debug/vaq/traces?name=vaq_e2e_index&slow=1")
	if !strings.Contains(body, "64 over the") {
		t.Errorf("slow exemplar dump wrong:\n%.300s", body)
	}

	// Chrome trace-event JSON parses and spans carry attribution args.
	body, resp = get("/debug/vaq/traces?name=vaq_e2e_index&format=chrome")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("chrome content type %q", ct)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export empty")
	}

	// The public snapshot exposes the same attribution and recall.
	snap := ix.Metrics()
	if snap.RecallSamples != 32 {
		t.Errorf("RecallSamples = %d, want 32", snap.RecallSamples)
	}
	if snap.ObservedRecall <= 0 || snap.ObservedRecall > 1 {
		t.Errorf("ObservedRecall = %v", snap.ObservedRecall)
	}
	if len(snap.AbandonDepths) == 0 || len(snap.TISkipsByRank) == 0 {
		t.Errorf("attribution missing from public snapshot")
	}
	var depths uint64
	for _, v := range snap.AbandonDepths {
		depths += v
	}
	if depths != snap.CodesAbandonedEA {
		t.Errorf("attribution sum %d != %d abandons", depths, snap.CodesAbandonedEA)
	}

	// Slowest exemplar is readable through the public aliases.
	slow, seen := tr.Slowest()
	if seen != 64 || len(slow) == 0 {
		t.Fatalf("exemplars: seen %d kept %d", seen, len(slow))
	}
	if slow[0].Total <= 0 {
		t.Errorf("slowest exemplar has no duration: %+v", slow[0])
	}
}
