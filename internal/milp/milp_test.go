package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLPTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  => x=2, y=6, obj=36.
	p := &Problem{
		Objective: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Sense: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Sense: LE, RHS: 18},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 36, 1e-7) || !approx(sol.X[0], 2, 1e-7) || !approx(sol.X[1], 6, 1e-7) {
		t.Fatalf("got %+v", sol)
	}
}

func TestLPEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 10, y <= 6 => x=4, y=6, obj=16.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 10},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 6},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 16, 1e-7) {
		t.Fatalf("got %+v", sol)
	}
}

func TestLPGreaterEqual(t *testing.T) {
	// max -x - y s.t. x + y >= 5, x <= 10, y <= 10 (minimize x+y) => obj = -5.
	p := &Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 5},
		},
		Upper: []float64{10, 10},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -5, 1e-7) {
		t.Fatalf("got %+v", sol)
	}
}

func TestLPNegativeRHS(t *testing.T) {
	// Constraint with negative RHS: -x <= -3 is x >= 3.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: LE, RHS: -3},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 3, 1e-7) {
		t.Fatalf("got %+v", sol)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 5},
			{Coeffs: []float64{1}, Sense: LE, RHS: 3},
		},
	}
	if _, err := SolveLP(p); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestLPUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 0},
		},
	}
	if _, err := SolveLP(p); err != ErrUnbounded {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestLPBounds(t *testing.T) {
	// max x + y with 1 <= x <= 2, 0 <= y <= 3.
	p := &Problem{
		Objective:   []float64{1, 1},
		Constraints: nil,
		Lower:       []float64{1, 0},
		Upper:       []float64{2, 3},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 5, 1e-7) {
		t.Fatalf("got %+v", sol)
	}
	// Lower bound must be respected when it is not binding at optimum of
	// a minimizing objective.
	p2 := &Problem{
		Objective: []float64{-1, -1},
		Lower:     []float64{1, 0},
		Upper:     []float64{2, 3},
	}
	sol2, err := SolveLP(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol2.X[0], 1, 1e-7) || !approx(sol2.X[1], 0, 1e-7) {
		t.Fatalf("got %+v", sol2)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := SolveLP(&Problem{}); err == nil {
		t.Fatal("empty objective must fail")
	}
	if _, err := SolveLP(&Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: 1}},
	}); err == nil {
		t.Fatal("bad coefficient count must fail")
	}
	if _, err := SolveLP(&Problem{Objective: []float64{1}, Lower: []float64{0, 0}}); err == nil {
		t.Fatal("bad Lower length must fail")
	}
	if _, err := SolveLP(&Problem{Objective: []float64{1}, Upper: []float64{0, 0}}); err == nil {
		t.Fatal("bad Upper length must fail")
	}
	if _, err := SolveMILP(&Problem{Objective: []float64{1}, Integer: []bool{true, false}}); err == nil {
		t.Fatal("bad Integer length must fail")
	}
}

func TestMILPKnapsack(t *testing.T) {
	// 0/1 knapsack: values 10,13,7; weights 3,4,2; capacity 6.
	// Best: items 1+3 (wait: 10+7=17 w=5) vs item 2+3 (13+7=20 w=6). => 20.
	p := &Problem{
		Objective: []float64{10, 13, 7},
		Constraints: []Constraint{
			{Coeffs: []float64{3, 4, 2}, Sense: LE, RHS: 6},
		},
		Integer: []bool{true, true, true},
		Upper:   []float64{1, 1, 1},
	}
	sol, err := SolveMILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 20, 1e-6) {
		t.Fatalf("got %+v", sol)
	}
	if !approx(sol.X[0], 0, 1e-6) || !approx(sol.X[1], 1, 1e-6) || !approx(sol.X[2], 1, 1e-6) {
		t.Fatalf("got %+v", sol)
	}
}

func TestMILPIntegerRounding(t *testing.T) {
	// LP optimum is fractional (x = 3.5); MILP must give x=3.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{2}, Sense: LE, RHS: 7},
		},
		Integer: []bool{true},
	}
	sol, err := SolveMILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 3, 1e-9) {
		t.Fatalf("got %+v", sol)
	}
}

func TestMILPEqualityBudget(t *testing.T) {
	// The VAQ shape: maximize w·y s.t. Σy = B, lo <= y <= hi, y integer.
	w := []float64{0.5, 0.3, 0.15, 0.05}
	B := 20.0
	p := &Problem{
		Objective: w,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 1}, Sense: EQ, RHS: B},
		},
		Integer: []bool{true, true, true, true},
		Lower:   []float64{1, 1, 1, 1},
		Upper:   []float64{8, 8, 8, 8},
	}
	sol, err := SolveMILP(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range sol.X {
		sum += v
		if v < 1-1e-9 || v > 8+1e-9 {
			t.Fatalf("bounds violated: %v", sol.X)
		}
		if !approx(v, math.Round(v), 1e-9) {
			t.Fatalf("non-integral: %v", sol.X)
		}
	}
	if !approx(sum, B, 1e-9) {
		t.Fatalf("budget not met: %v", sol.X)
	}
	// Greedy-optimal here: y = (8, 8, 3, 1) with obj 4 + 2.4 + .45 + .05.
	want := 0.5*8 + 0.3*8 + 0.15*3 + 0.05*1
	if !approx(sol.Objective, want, 1e-9) {
		t.Fatalf("objective %v want %v (%v)", sol.Objective, want, sol.X)
	}
}

func TestMILPMonotoneConstraint(t *testing.T) {
	// Add y1 >= y2 >= y3 ordering rows; optimum must respect them.
	p := &Problem{
		Objective: []float64{0.2, 0.5, 0.3}, // tempts solver to invert order
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1}, Sense: EQ, RHS: 9},
			{Coeffs: []float64{1, -1, 0}, Sense: GE, RHS: 0},
			{Coeffs: []float64{0, 1, -1}, Sense: GE, RHS: 0},
		},
		Integer: []bool{true, true, true},
		Lower:   []float64{1, 1, 1},
		Upper:   []float64{6, 6, 6},
	}
	sol, err := SolveMILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] < sol.X[1]-1e-9 || sol.X[1] < sol.X[2]-1e-9 {
		t.Fatalf("ordering violated: %v", sol.X)
	}
}

func TestMILPInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 10},
		},
		Integer: []bool{true, true},
		Upper:   []float64{3, 3},
	}
	if _, err := SolveMILP(p); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestMILPAllContinuousDelegates(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Upper:     []float64{2.5},
	}
	sol, err := SolveMILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2.5, 1e-9) {
		t.Fatalf("got %+v", sol)
	}
}

// Property: for the budget-allocation family (the only MILP shape VAQ
// issues), branch & bound must match exhaustive search.
func TestMILPMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2 // 2..4 variables
		lo, hi := 1.0, float64(rng.Intn(4)+3)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() + 0.01
		}
		budget := float64(rng.Intn(n*int(hi)-n+1) + n) // in [n, n*hi]
		p := &Problem{
			Objective: w,
			Constraints: []Constraint{
				{Coeffs: ones(n), Sense: EQ, RHS: budget},
			},
			Integer: trues(n),
			Lower:   fill(n, lo),
			Upper:   fill(n, hi),
		}
		sol, err := SolveMILP(p)
		// Brute force.
		best := math.Inf(-1)
		var rec func(i int, rem float64, acc float64)
		rec = func(i int, rem float64, acc float64) {
			if i == n {
				if rem == 0 && acc > best {
					best = acc
				}
				return
			}
			for v := lo; v <= hi; v++ {
				if v > rem {
					break
				}
				rec(i+1, rem-v, acc+w[i]*v)
			}
		}
		rec(0, budget, 0)
		if math.IsInf(best, -1) {
			return err == ErrInfeasible
		}
		if err != nil {
			return false
		}
		return approx(sol.Objective, best, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func ones(n int) []float64 { return fill(n, 1) }
func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
func trues(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}
