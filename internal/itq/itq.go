// Package itq implements ITQ-LSH (Gong et al., "Iterative Quantization";
// paper §II-C and §IV "Baselines"): PCA to the code length, an orthogonal
// rotation learned by alternating between binary assignments and an
// orthogonal Procrustes update, and Hamming-distance search over packed
// binary codes.
package itq

import (
	"fmt"
	"math/bits"
	"math/rand"

	"vaq/internal/linalg"
	"vaq/internal/pca"
	"vaq/internal/vec"
)

// Index is a built ITQ index.
type Index struct {
	model    *pca.TruncatedModel
	rotation *linalg.Dense // l x l learned rotation
	codes    []uint64      // n * words packed binary codes
	words    int
	nbits    int
	n        int
	dim      int
}

// Config configures Build.
type Config struct {
	// Bits is the binary code length (must be <= data dimensionality).
	Bits int
	// Iterations of the ITQ rotation refinement (default 30).
	Iterations int
	// Seed initializes the random rotation.
	Seed int64
}

// Build learns the rotation on train and encodes data.
func Build(train, data *vec.Matrix, cfg Config) (*Index, error) {
	if cfg.Bits < 1 {
		return nil, fmt.Errorf("itq: Bits must be >= 1, got %d", cfg.Bits)
	}
	if cfg.Bits > train.Cols {
		return nil, fmt.Errorf("itq: %d bits exceed %d dimensions", cfg.Bits, train.Cols)
	}
	if train.Cols != data.Cols {
		return nil, fmt.Errorf("itq: train dim %d != data dim %d", train.Cols, data.Cols)
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 30
	}
	// Only the top-l principal components matter, so use the truncated
	// (subspace-iteration) PCA: O(d^2 l) instead of O(d^3).
	l := cfg.Bits
	model, err := pca.FitTruncated(train, l, pca.Options{Center: true})
	if err != nil {
		return nil, err
	}
	z, err := model.Project(train)
	if err != nil {
		return nil, err
	}
	n := train.Rows
	v := linalg.NewDense(n, l)
	for i := 0; i < n; i++ {
		row := z.Row(i)
		dst := v.Row(i)
		for j := 0; j < l; j++ {
			dst[j] = float64(row[j])
		}
	}
	// Random orthogonal init via Procrustes of a random matrix.
	rng := rand.New(rand.NewSource(cfg.Seed))
	rinit := linalg.NewDense(l, l)
	for i := range rinit.Data {
		rinit.Data[i] = rng.NormFloat64()
	}
	r, err := linalg.OrthoProcrustes(rinit)
	if err != nil {
		return nil, err
	}
	// Alternate: B = sign(V R); R = Procrustes(Vᵀ B).
	for it := 0; it < iters; it++ {
		vr, err := v.Mul(r)
		if err != nil {
			return nil, err
		}
		b := linalg.NewDense(n, l)
		for i, val := range vr.Data {
			if val >= 0 {
				b.Data[i] = 1
			} else {
				b.Data[i] = -1
			}
		}
		vtb, err := v.T().Mul(b)
		if err != nil {
			return nil, err
		}
		r, err = linalg.OrthoProcrustes(vtb)
		if err != nil {
			return nil, err
		}
	}
	ix := &Index{
		model:    model,
		rotation: r,
		words:    (l + 63) / 64,
		nbits:    l,
		n:        data.Rows,
		dim:      train.Cols,
	}
	ix.codes = make([]uint64, data.Rows*ix.words)
	buf := make([]uint64, ix.words)
	for i := 0; i < data.Rows; i++ {
		if err := ix.encode(data.Row(i), buf); err != nil {
			return nil, err
		}
		copy(ix.codes[i*ix.words:(i+1)*ix.words], buf)
	}
	return ix, nil
}

// encode maps a raw vector to its packed binary code.
func (ix *Index) encode(x []float32, out []uint64) error {
	tmp := &vec.Matrix{Rows: 1, Cols: len(x), Data: x}
	zm, err := ix.model.Project(tmp)
	if err != nil {
		return err
	}
	zq := zm.Row(0)
	for w := range out {
		out[w] = 0
	}
	l := ix.nbits
	for j := 0; j < l; j++ {
		var s float64
		for t := 0; t < l; t++ {
			s += float64(zq[t]) * ix.rotation.At(t, j)
		}
		if s >= 0 {
			out[j/64] |= 1 << (j % 64)
		}
	}
	return nil
}

// Len reports the number of encoded vectors.
func (ix *Index) Len() int { return ix.n }

// Dim reports the expected query dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Bits reports the code length.
func (ix *Index) Bits() int { return ix.nbits }

// Search returns the k nearest neighbors by Hamming distance between the
// query's code and the database codes. Neighbor.Dist holds the Hamming
// distance (integer-valued float32).
func (ix *Index) Search(q []float32, k int) ([]vec.Neighbor, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("itq: query dim %d, index dim %d", len(q), ix.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("itq: k must be >= 1, got %d", k)
	}
	qcode := make([]uint64, ix.words)
	if err := ix.encode(q, qcode); err != nil {
		return nil, err
	}
	tk := vec.NewTopK(k)
	for i := 0; i < ix.n; i++ {
		base := i * ix.words
		var h int
		for w := 0; w < ix.words; w++ {
			h += bits.OnesCount64(ix.codes[base+w] ^ qcode[w])
		}
		tk.Push(i, float32(h))
	}
	return tk.Results(), nil
}
