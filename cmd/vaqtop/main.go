// Command vaqtop is a live terminal trend viewer for a running VAQ
// process: it polls the /debug/vaq/history endpoint served by -metrics-addr
// (vaqsearch, or anything embedding the index with a published history
// collector) and renders the per-index and per-shard ASCII-sparkline trend
// lines in place, top(1)-style.
//
// Usage:
//
//	vaqsearch -data sald.vaqd -shards 4 -metrics-addr :6060 -history -hold 10m &
//	vaqtop -addr localhost:6060
//	vaqtop -addr localhost:6060 -index vaqsearch_index -interval 1s
//	vaqtop -addr localhost:6060 -once          # one frame, no screen control
//
// vaqtop renders whatever the endpoint serves, so it needs no index
// configuration of its own; it exits with an error if the endpoint is
// unreachable or serves no collectors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:6060", "host:port of the process's -metrics-addr debug mux")
		index    = flag.String("index", "", "only this published collector (default: all)")
		interval = flag.Duration("interval", 2*time.Second, "poll/refresh cadence")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	)
	flag.Parse()

	u := url.URL{Scheme: "http", Host: *addr, Path: "/debug/vaq/history"}
	q := url.Values{"format": {"text"}}
	if *index != "" {
		q.Set("index", *index)
	}
	u.RawQuery = q.Encode()
	client := &http.Client{Timeout: 5 * time.Second}

	fetch := func() (string, error) {
		resp, err := client.Get(u.String())
		if err != nil {
			return "", err
		}
		defer resp.Body.Close() //nolint:errcheck // read-only body
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("%s: %s", u.String(), string(body))
		}
		return string(body), nil
	}

	frame, err := fetch()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaqtop: %v\n", err)
		os.Exit(1)
	}
	if frame == "" {
		fmt.Fprintf(os.Stderr, "vaqtop: %s serves no history collectors (run the index with -history)\n", *addr)
		os.Exit(1)
	}
	if *once {
		fmt.Print(frame)
		return
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		fmt.Print("\033[2J\033[H") // clear screen, home cursor
		fmt.Print(frame)
		fmt.Printf("\n[vaqtop %s every %s — ctrl-c to exit]\n", u.Host, *interval)
		select {
		case <-sigCh:
			return
		case <-tick.C:
		}
		next, err := fetch()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vaqtop: %v\n", err)
			os.Exit(1)
		}
		frame = next
	}
}
