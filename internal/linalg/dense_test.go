package linalg

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/vec"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Fatal("Set/At")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
	if len(m.Row(0)) != 3 {
		t.Fatal("Row length")
	}
}

func TestDenseFromRows(t *testing.T) {
	m, err := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatal("values")
	}
	if _, err := DenseFromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged must fail")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("bad transpose %+v", mt)
	}
}

func TestMul(t *testing.T) {
	a, _ := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := DenseFromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 0 {
		t.Fatalf("got %v", c.Data)
	}
	if _, err := a.Mul(NewDense(3, 2)); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("got %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestIdentityAndCol(t *testing.T) {
	id := Identity(3)
	if id.At(1, 1) != 1 || id.At(0, 1) != 0 {
		t.Fatal("identity")
	}
	m, _ := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("col %v", col)
	}
}

func TestFloat32Conversions(t *testing.T) {
	f := vec.NewMatrix(2, 2)
	f.Set(0, 1, 3.5)
	d := FromFloat32(f)
	if d.At(0, 1) != 3.5 {
		t.Fatal("FromFloat32")
	}
	back := d.ToFloat32()
	if !back.Equal(f) {
		t.Fatal("round trip")
	}
}

func TestCovarianceCentered(t *testing.T) {
	// Two perfectly correlated columns.
	x, _ := vec.FromRows([][]float32{{1, 2}, {2, 4}, {3, 6}})
	cov := Covariance(x, true)
	// var(col0) = 2/3, var(col1) = 8/3, cov = 4/3
	if math.Abs(cov.At(0, 0)-2.0/3) > 1e-9 ||
		math.Abs(cov.At(1, 1)-8.0/3) > 1e-9 ||
		math.Abs(cov.At(0, 1)-4.0/3) > 1e-9 ||
		cov.At(0, 1) != cov.At(1, 0) {
		t.Fatalf("cov = %v", cov.Data)
	}
}

func TestCovarianceUncentered(t *testing.T) {
	x, _ := vec.FromRows([][]float32{{1, 0}, {0, 1}})
	cov := Covariance(x, false)
	if cov.At(0, 0) != 0.5 || cov.At(1, 1) != 0.5 || cov.At(0, 1) != 0 {
		t.Fatalf("cov = %v", cov.Data)
	}
}

func TestCovarianceEmpty(t *testing.T) {
	cov := Covariance(vec.NewMatrix(0, 3), true)
	if cov.Rows != 3 || cov.Cols != 3 {
		t.Fatal("shape")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func checkEig(t *testing.T, a *Dense, res *EigResult, tol float64) {
	t.Helper()
	n := a.Rows
	// Sorted descending.
	for i := 1; i < n; i++ {
		if res.Values[i] > res.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", res.Values)
		}
	}
	// A v = lambda v for each column.
	for j := 0; j < n; j++ {
		v := res.Vectors.Col(j)
		av, _ := a.MulVec(v)
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-res.Values[j]*v[i]) > tol {
				t.Fatalf("A·v != λ·v at col %d row %d: %v vs %v",
					j, i, av[i], res.Values[j]*v[i])
			}
		}
	}
	// Orthonormal columns.
	for a1 := 0; a1 < n; a1++ {
		for b1 := a1; b1 < n; b1++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += res.Vectors.At(i, a1) * res.Vectors.At(i, b1)
			}
			want := 0.0
			if a1 == b1 {
				want = 1
			}
			if math.Abs(dot-want) > tol {
				t.Fatalf("V not orthonormal at (%d,%d): %v", a1, b1, dot)
			}
		}
	}
	// Trace preserved.
	var trA, trL float64
	for i := 0; i < n; i++ {
		trA += a.At(i, i)
		trL += res.Values[i]
	}
	if math.Abs(trA-trL) > tol*float64(n) {
		t.Fatalf("trace mismatch %v vs %v", trA, trL)
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	a, _ := DenseFromRows([][]float64{{2, 1}, {1, 2}})
	for _, m := range []EigMethod{EigJacobi, EigQL} {
		res, err := SymEig(a, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Values[0]-3) > 1e-10 || math.Abs(res.Values[1]-1) > 1e-10 {
			t.Fatalf("method %d: values %v", m, res.Values)
		}
		checkEig(t, a, res, 1e-9)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a, _ := DenseFromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 3}})
	res, err := SymEig(a, EigAuto)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i := range want {
		if math.Abs(res.Values[i]-want[i]) > 1e-12 {
			t.Fatalf("values %v", res.Values)
		}
	}
}

func TestSymEigRandomBothMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 24, 50} {
		a := randomSymmetric(rng, n)
		for _, m := range []EigMethod{EigJacobi, EigQL} {
			res, err := SymEig(a, m)
			if err != nil {
				t.Fatalf("n=%d method=%d: %v", n, m, err)
			}
			checkEig(t, a, res, 1e-7)
		}
	}
}

func TestSymEigMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		a := randomSymmetric(rng, 16)
		r1, err := SymEig(a, EigJacobi)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := SymEig(a, EigQL)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Values {
			if math.Abs(r1.Values[i]-r2.Values[i]) > 1e-8 {
				t.Fatalf("eigenvalue %d differs: %v vs %v", i, r1.Values[i], r2.Values[i])
			}
		}
	}
}

func TestSymEigLargeQL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSymmetric(rng, 128)
	res, err := SymEig(a, EigQL)
	if err != nil {
		t.Fatal(err)
	}
	checkEig(t, a, res, 1e-6)
}

func TestSymEigPSD(t *testing.T) {
	// Covariance matrices are PSD; eigenvalues must be >= -eps.
	rng := rand.New(rand.NewSource(5))
	x := vec.NewMatrix(200, 12)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	cov := Covariance(x, true)
	res, err := SymEig(cov, EigAuto)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v < -1e-9 {
			t.Fatalf("PSD matrix has negative eigenvalue %v", v)
		}
	}
	checkEig(t, cov, res, 1e-7)
}

func TestSymEigErrors(t *testing.T) {
	if _, err := SymEig(NewDense(2, 3), EigAuto); err == nil {
		t.Fatal("non-square must fail")
	}
	res, err := SymEig(NewDense(0, 0), EigAuto)
	if err != nil || len(res.Values) != 0 {
		t.Fatal("empty matrix should succeed trivially")
	}
	if _, err := SymEig(Identity(2), EigMethod(99)); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range [][2]int{{4, 4}, {8, 3}, {3, 8}, {20, 6}, {1, 5}} {
		n, m := shape[0], shape[1]
		a := NewDense(n, m)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		res, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		r := min(n, m)
		if len(res.S) != r || res.U.Cols != r || res.V.Cols != r {
			t.Fatalf("thin shapes wrong: %d %d %d", len(res.S), res.U.Cols, res.V.Cols)
		}
		for i := 1; i < r; i++ {
			if res.S[i] > res.S[i-1]+1e-10 {
				t.Fatalf("singular values not sorted: %v", res.S)
			}
			if res.S[i] < 0 {
				t.Fatalf("negative singular value: %v", res.S)
			}
		}
		// Reconstruct U S Vt and compare.
		us := NewDense(n, r)
		for i := 0; i < n; i++ {
			for j := 0; j < r; j++ {
				us.Set(i, j, res.U.At(i, j)*res.S[j])
			}
		}
		rec, err := us.Mul(res.V.T())
		if err != nil {
			t.Fatal(err)
		}
		if diff := MaxAbsDiff(rec, a); diff > 1e-6 {
			t.Fatalf("shape %v: reconstruction error %v", shape, diff)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value ~ 0; U must stay orthonormal.
	a, _ := DenseFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.S[1] > 1e-6 {
		t.Fatalf("rank-1 matrix should have tiny second singular value: %v", res.S)
	}
	var dot, n0, n1 float64
	for i := 0; i < 3; i++ {
		dot += res.U.At(i, 0) * res.U.At(i, 1)
		n0 += res.U.At(i, 0) * res.U.At(i, 0)
		n1 += res.U.At(i, 1) * res.U.At(i, 1)
	}
	if math.Abs(dot) > 1e-6 || math.Abs(n0-1) > 1e-6 || math.Abs(n1-1) > 1e-6 {
		t.Fatalf("U not orthonormal: dot=%v norms=%v,%v", dot, n0, n1)
	}
}

func TestSVDEmpty(t *testing.T) {
	res, err := SVD(NewDense(0, 3))
	if err != nil || len(res.S) != 0 {
		t.Fatalf("empty SVD: %v %v", res, err)
	}
}

func TestOrthoProcrustes(t *testing.T) {
	// For an already-orthogonal M, Procrustes must return (approximately) an
	// orthogonal matrix R with R Rᵀ = I.
	theta := 0.7
	m, _ := DenseFromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	r, err := OrthoProcrustes(m)
	if err != nil {
		t.Fatal(err)
	}
	rrt, _ := r.Mul(r.T())
	if MaxAbsDiff(rrt, Identity(2)) > 1e-8 {
		t.Fatalf("R not orthogonal: %v", rrt.Data)
	}
}

func TestOrthoProcrustesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		n := 6
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		r, err := OrthoProcrustes(m)
		if err != nil {
			t.Fatal(err)
		}
		rrt, _ := r.Mul(r.T())
		if MaxAbsDiff(rrt, Identity(n)) > 1e-7 {
			t.Fatalf("R not orthogonal (trial %d)", trial)
		}
	}
}
