package milp

import (
	"fmt"
	"math"
)

// SolveMILP solves the problem with its integrality requirements using
// LP-relaxation branch & bound. Branching adds bound rows (x_j <= floor,
// x_j >= ceil) on the most fractional integer variable; nodes whose LP
// bound cannot beat the incumbent are pruned.
func SolveMILP(p *Problem) (*Solution, error) {
	n, err := p.validate()
	if err != nil {
		return nil, err
	}
	anyInt := false
	if p.Integer != nil {
		for _, b := range p.Integer {
			if b {
				anyInt = true
				break
			}
		}
	}
	if !anyInt {
		return SolveLP(p)
	}

	type node struct {
		lower []float64
		upper []float64
	}
	baseLower := make([]float64, n)
	baseUpper := make([]float64, n)
	for j := 0; j < n; j++ {
		if p.Lower != nil {
			baseLower[j] = p.Lower[j]
		}
		if p.Upper != nil {
			baseUpper[j] = p.Upper[j]
		} else {
			baseUpper[j] = math.Inf(1)
		}
	}

	var incumbent *Solution
	stack := []node{{lower: baseLower, upper: baseUpper}}
	const maxNodes = 200000
	nodes := 0
	for len(stack) > 0 {
		nodes++
		if nodes > maxNodes {
			return nil, fmt.Errorf("milp: branch & bound node limit (%d) exceeded", maxNodes)
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sub := &Problem{
			Objective:   p.Objective,
			Constraints: p.Constraints,
			Lower:       nd.lower,
			Upper:       nd.upper,
		}
		sol, err := SolveLP(sub)
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			return nil, err
		}
		if incumbent != nil && sol.Objective <= incumbent.Objective+1e-9 {
			continue // bound: cannot beat incumbent
		}
		// Find the most fractional integer variable.
		branchVar := -1
		worstFrac := 1e-6
		for j := 0; j < n; j++ {
			if !p.Integer[j] {
				continue
			}
			f := sol.X[j] - math.Floor(sol.X[j])
			frac := math.Min(f, 1-f)
			if frac > worstFrac {
				worstFrac = frac
				branchVar = j
			}
		}
		if branchVar == -1 {
			// Integral: round to kill float dust and accept as incumbent.
			x := make([]float64, n)
			var obj float64
			for j := 0; j < n; j++ {
				if p.Integer[j] {
					x[j] = math.Round(sol.X[j])
				} else {
					x[j] = sol.X[j]
				}
				obj += p.Objective[j] * x[j]
			}
			if incumbent == nil || obj > incumbent.Objective {
				incumbent = &Solution{X: x, Objective: obj}
			}
			continue
		}
		v := sol.X[branchVar]
		// Down branch: x_j <= floor(v)
		down := node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
		}
		down.upper[branchVar] = math.Min(down.upper[branchVar], math.Floor(v))
		// Up branch: x_j >= ceil(v)
		up := node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
		}
		up.lower[branchVar] = math.Max(up.lower[branchVar], math.Ceil(v))
		if down.upper[branchVar] >= down.lower[branchVar]-1e-9 {
			stack = append(stack, down)
		}
		if math.IsInf(up.upper[branchVar], 1) || up.upper[branchVar] >= up.lower[branchVar]-1e-9 {
			stack = append(stack, up)
		}
	}
	if incumbent == nil {
		return nil, ErrInfeasible
	}
	return incumbent, nil
}
