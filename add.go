package vaq

import (
	"fmt"

	"vaq/internal/vec"
)

// Add appends new vectors to the index without retraining: they are
// encoded with the existing dictionaries and inserted into the skip
// structure. Ids are assigned sequentially from Len(); the first new id is
// returned. Accuracy for the added vectors matches the rest of the index
// as long as they follow the training distribution.
func (ix *Index) Add(vectors [][]float32) (int, error) {
	m, err := vec.FromRows(vectors)
	if err != nil {
		return 0, fmt.Errorf("vaq: %w", err)
	}
	id, err := ix.inner.Add(m)
	if err != nil {
		return 0, fmt.Errorf("vaq: %w", err)
	}
	return id, nil
}
