package vaq

import (
	"path/filepath"
	"testing"
	"time"
)

// TestPublicWorkloadCaptureReplay drives the public capture→save→load→
// replay loop the way the README quickstart does, including the SLO
// config passthrough.
func TestPublicWorkloadCaptureReplay(t *testing.T) {
	ix, data := metricsTestIndex(t, 600, 12, Config{
		NumSubspaces: 4, Budget: 24, Seed: 5,
		SLO: &SLO{LatencyTarget: time.Second},
	})
	cap := ix.EnableCapture(CaptureConfig{SampleRate: 1})
	if ix.Capture() != cap {
		t.Fatal("Capture() does not return the enabled buffer")
	}
	for i := 0; i < 10; i++ {
		if _, err := ix.Search(data[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	log := cap.Snapshot()
	if len(log.Records) != 10 {
		t.Fatalf("captured %d records, want 10", len(log.Records))
	}
	if log.Fingerprint != ix.ConfigFingerprint() || log.Fingerprint == "" {
		t.Fatalf("fingerprint mismatch: log %q index %q", log.Fingerprint, ix.ConfigFingerprint())
	}

	path := filepath.Join(t.TempDir(), "public.vaqwl")
	if err := log.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkloadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, diffs, err := ix.ReplayWorkload(back, ReplayOptions{
		Thresholds: ReplayThresholds{MinOverlap: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 10 || rep.MeanOverlap != 1 || !rep.Passed() {
		t.Fatalf("same-index replay not exact: %+v", rep)
	}

	// The SLO passthrough reaches the public snapshot: a 1s target over
	// sub-millisecond queries leaves the full budget.
	snap := ix.Metrics()
	if snap.SLO == nil {
		t.Fatal("MetricsSnapshot.SLO nil with Config.SLO set")
	}
	if snap.SLO.LatencyBudgetRemaining != 1 || snap.SLO.LatencyExhausted {
		t.Errorf("budget spent by fast queries: %+v", snap.SLO)
	}
	ix.DisableCapture()
	if ix.Capture() != nil {
		t.Error("Capture() non-nil after DisableCapture")
	}
}
