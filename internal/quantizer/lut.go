package quantizer

import (
	"vaq/internal/vec"
)

// LUT caches, for one query, the squared Euclidean distances between each
// query subvector and every dictionary item of that subspace — the
// asymmetric distance computation tables of paper Figure 2 step 3 and
// Algorithm 4 lines 5-13. Tables for different subspaces may have
// different sizes, so they are stored flattened with per-subspace offsets.
type LUT struct {
	M       int
	Offsets []int
	Dist    []float32
}

// BuildLUT computes the ADC lookup table for query q.
func (cb *Codebooks) BuildLUT(q []float32) *LUT {
	m := cb.Sub.M()
	offsets := make([]int, m+1)
	total := 0
	for s := 0; s < m; s++ {
		offsets[s] = total
		total += cb.Books[s].Rows
	}
	offsets[m] = total
	lut := &LUT{M: m, Offsets: offsets, Dist: make([]float32, total)}
	cb.FillLUT(q, lut)
	return lut
}

// FillLUT recomputes an existing table in place for a new query, avoiding
// per-query allocation on the batch path.
func (cb *Codebooks) FillLUT(q []float32, lut *LUT) {
	for s := 0; s < cb.Sub.M(); s++ {
		qs := cb.Sub.Of(q, s)
		book := cb.Books[s]
		out := lut.Dist[lut.Offsets[s]:lut.Offsets[s+1]]
		for c := 0; c < book.Rows; c++ {
			out[c] = vec.SquaredL2(qs, book.Row(c))
		}
	}
}

// Table returns the table slice of subspace s.
func (l *LUT) Table(s int) []float32 { return l.Dist[l.Offsets[s]:l.Offsets[s+1]] }

// Distance accumulates the full approximate squared distance of code word
// c against the table.
func (l *LUT) Distance(code []uint16) float32 {
	var d float32
	for s, c := range code {
		d += l.Dist[l.Offsets[s]+int(c)]
	}
	return d
}

// ScanADC performs the exhaustive asymmetric-distance scan over all codes,
// returning the k nearest neighbors by approximate squared distance. This
// is the query path of plain PQ/OPQ (paper Figure 2 step 3-4).
func ScanADC(codes *Codes, lut *LUT, k int) []vec.Neighbor {
	tk := vec.NewTopK(k)
	m := codes.M
	for i := 0; i < codes.N; i++ {
		row := codes.Data[i*m : (i+1)*m]
		var d float32
		for s := 0; s < m; s++ {
			d += lut.Dist[lut.Offsets[s]+int(row[s])]
		}
		tk.Push(i, d)
	}
	return tk.Results()
}
